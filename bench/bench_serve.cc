// Inference-service bench: per-batch latency percentiles (p50/p99) and
// request throughput for the sharded top-k scorer, exact fp32 scan vs
// the int8 quantized two-phase scan (ServeConfig::quantize), across
// batch sizes and 1 / 2 / hardware threads — plus the probe that gates
// the exit code: quantized responses must be bit-identical to the
// exact 1-thread baseline for every mode and worker count. Emits
// machine-readable BENCH_serve.json into the working directory.
//
// The ranking cache is disabled so every request pays full catalog
// scoring — the numbers measure the scorer, not the cache.
//
// Tiers:
//   BSLREC_FAST=1   tiny catalog, few reps (CI smoke)
//   BSLREC_SCALE=1  serving-scale: 100k-item catalog, dim 128,
//                   power-law (zipf) item popularity — the regime where
//                   the 4x memory-traffic cut of the int8 scan shows up
//                   as req/s. On a multi-core host quantized should
//                   beat exact here; single-core it is informational.
//   (neither)       mid-size default
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "serve/inference_service.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

struct ServePoint {
  const char* mode;  // "exact" | "quantized"
  size_t threads;
  size_t batch;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
};

std::vector<size_t> ThreadCounts() {
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

// Nearest-rank percentile (ceil(p*n)-th order statistic), so "p99"
// reports at least the 99th percentile even at small sample counts
// instead of silently rounding down into the body of the distribution.
double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[std::min(sorted_ms.size(), std::max<size_t>(rank, 1)) - 1];
}

// Deterministic request stream: users cycle through a seeded shuffle so
// every (mode, threads, batch) point serves the same traffic.
std::vector<serve::TopKRequest> MakeRequests(size_t count,
                                             uint32_t num_users,
                                             uint32_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::TopKRequest> reqs(count);
  for (serve::TopKRequest& req : reqs) {
    req.user = static_cast<uint32_t>(rng.NextIndex(num_users));
    req.k = k;
  }
  return reqs;
}

serve::ServeConfig MakeConfig(uint32_t k, size_t threads, bool quantize) {
  serve::ServeConfig sc;
  sc.max_k = k;
  sc.cache_rankings = false;  // measure scoring, not cache hits
  sc.quantize = quantize;
  sc.runtime.num_threads = threads;
  return sc;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  const bool scale = bench::ScaleMode();
  SyntheticConfig cfg;
  if (scale) {
    // Serving-scale: catalog far beyond cache, production embedding
    // width, zipf popularity so the item-degree distribution is skewed
    // like real traffic.
    cfg.num_users = 2000;
    cfg.num_items = 100000;
    cfg.num_clusters = 25;
    cfg.avg_items_per_user = 25.0;
    cfg.zipf_alpha = 1.1;
  } else {
    cfg.num_users = fast ? 400 : 1500;
    cfg.num_items = fast ? 300 : 1200;
    cfg.num_clusters = 10;
    cfg.avg_items_per_user = 18.0;
  }
  cfg.seed = 77;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = scale ? 128 : (fast ? 16 : 48);
  const uint32_t k = 20;
  const size_t batches_per_point = scale ? 10 : (fast ? 8 : 30);
  const std::vector<size_t> batch_sizes =
      scale ? std::vector<size_t>{64, 256} : std::vector<size_t>{1, 16, 256};

  Rng rng(5);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  model.Forward(rng);

  std::printf("serve bench%s: %u users, %u items, dim %zu, k %u\n",
              scale ? " [scale tier]" : "", data.num_users(),
              data.num_items(), dim, k);

  std::vector<ServePoint> points;
  for (size_t threads : ThreadCounts()) {
    for (const bool quantize : {false, true}) {
      serve::InferenceService service(data, model,
                                      MakeConfig(k, threads, quantize));
      for (size_t batch : batch_sizes) {
        const std::vector<serve::TopKRequest> reqs =
            MakeRequests(batch * batches_per_point, data.num_users(), k, 31);
        // Warm-up batch (pool wake-up, allocator).
        service.HandleBatch({reqs.data(), batch});
        std::vector<double> latencies_ms;
        latencies_ms.reserve(batches_per_point);
        double total_secs = 0.0;
        for (size_t b = 0; b < batches_per_point; ++b) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto resps =
              service.HandleBatch({reqs.data() + b * batch, batch});
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          latencies_ms.push_back(secs * 1000.0);
          total_secs += secs;
          if (resps.size() != batch) return 1;  // paranoia
        }
        std::sort(latencies_ms.begin(), latencies_ms.end());
        ServePoint p;
        p.mode = quantize ? "quantized" : "exact";
        p.threads = threads;
        p.batch = batch;
        p.p50_ms = Percentile(latencies_ms, 0.50);
        p.p99_ms = Percentile(latencies_ms, 0.99);
        p.requests_per_sec =
            static_cast<double>(batch * batches_per_point) / total_secs;
        points.push_back(p);
        std::printf(
            "%-9s threads=%zu batch=%-3zu  p50 %.3f ms  p99 %.3f ms  "
            "%.0f req/s\n",
            p.mode, threads, batch, p.p50_ms, p.p99_ms, p.requests_per_sec);
      }
    }
  }

  // Quantized-vs-exact throughput at the widest point (hw threads,
  // largest batch): the headline the scale tier exists to measure.
  double speedup_at_hw = 0.0;
  {
    double exact_rps = 0.0, quant_rps = 0.0;
    for (const ServePoint& p : points) {
      if (p.threads == ThreadCounts().back() &&
          p.batch == batch_sizes.back()) {
        (p.mode[0] == 'e' ? exact_rps : quant_rps) = p.requests_per_sec;
      }
    }
    if (exact_rps > 0.0) speedup_at_hw = quant_rps / exact_rps;
    std::printf("quantized vs exact at hw threads, batch %zu: %.2fx\n",
                batch_sizes.back(), speedup_at_hw);
    if (runtime::ResolveNumThreads(0) > 1) {
      std::printf("quantized strictly faster at hw threads: %s\n",
                  speedup_at_hw > 1.0 ? "yes" : "NO");
    } else {
      std::printf(
          "single hardware core: phase-1 bandwidth win is muted "
          "(informational only)\n");
    }
  }

  // ---- bit-identity probe (gates the exit code) ----
  // Every mode at every worker count must reproduce the exact scorer's
  // 1-thread responses bitwise — the quantized scan is an acceleration
  // structure, never a different ranking function.
  bool identical = true;
  serve::CatalogScorer::Stats quant_stats;
  {
    const std::vector<serve::TopKRequest> probe =
        MakeRequests(scale ? 32 : 64, data.num_users(), k, 97);
    serve::InferenceService baseline(data, model, MakeConfig(k, 1, false));
    const auto want = baseline.HandleBatch(probe);
    for (size_t threads : ThreadCounts()) {
      for (const bool quantize : {false, true}) {
        serve::InferenceService service(data, model,
                                        MakeConfig(k, threads, quantize));
        const auto got = service.HandleBatch(probe);
        for (size_t r = 0; r < probe.size(); ++r) {
          identical = identical && got[r].items == want[r].items &&
                      got[r].scores == want[r].scores;
        }
        if (quantize) {
          const serve::CatalogScorer::Stats st = service.scorer().stats();
          quant_stats.shards_scanned += st.shards_scanned;
          quant_stats.shards_fallback += st.shards_fallback;
        }
      }
    }
  }
  std::printf("quantized/exact bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("quantized probe scan: %llu shard tasks, %llu exact fallbacks\n",
              static_cast<unsigned long long>(quant_stats.shards_scanned),
              static_cast<unsigned long long>(quant_stats.shards_fallback));

  // ---- machine-readable output ----
  FILE* out = bench::BeginBenchJson("BENCH_serve.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"dim\": %zu, \"k\": %u},\n",
               data.num_users(), data.num_items(), dim, k);
  std::fprintf(out, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ServePoint& p = points[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"requests_per_sec\": %.1f}%s\n",
                 p.mode, p.threads, p.batch, p.p50_ms, p.p99_ms,
                 p.requests_per_sec, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"quantized_speedup_at_hw_threads\": %.3f,\n",
               speedup_at_hw);
  std::fprintf(out,
               "  \"quantized_probe_scan\": {\"shard_tasks\": %llu, "
               "\"exact_fallbacks\": %llu},\n",
               static_cast<unsigned long long>(quant_stats.shards_scanned),
               static_cast<unsigned long long>(quant_stats.shards_fallback));
  bench::FinishBenchJson(out, "BENCH_serve.json", identical);
  return identical ? 0 : 1;
}
