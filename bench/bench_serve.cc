// Inference-service bench: per-batch latency percentiles (p50/p99) and
// request throughput for the sharded top-k scorer at batch sizes
// 1 / 16 / 256 and 1 / 2 / hardware threads, plus a probe that the
// responses stay bit-identical across worker counts. Emits
// machine-readable BENCH_serve.json into the working directory.
//
// The ranking cache is disabled so every request pays full catalog
// scoring — the numbers measure the scorer, not the cache.
//
// BSLREC_FAST=1 shrinks the dataset and repetitions for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "serve/inference_service.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

struct ServePoint {
  size_t threads;
  size_t batch;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
};

std::vector<size_t> ThreadCounts() {
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

// Nearest-rank percentile (ceil(p*n)-th order statistic), so "p99"
// reports at least the 99th percentile even at small sample counts
// instead of silently rounding down into the body of the distribution.
double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[std::min(sorted_ms.size(), std::max<size_t>(rank, 1)) - 1];
}

// Deterministic request stream: users cycle through a seeded shuffle so
// every (threads, batch) point serves the same traffic.
std::vector<serve::TopKRequest> MakeRequests(size_t count,
                                             uint32_t num_users,
                                             uint32_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::TopKRequest> reqs(count);
  for (serve::TopKRequest& req : reqs) {
    req.user = static_cast<uint32_t>(rng.NextIndex(num_users));
    req.k = k;
  }
  return reqs;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  SyntheticConfig cfg;
  cfg.num_users = fast ? 400 : 1500;
  cfg.num_items = fast ? 300 : 1200;
  cfg.num_clusters = 10;
  cfg.avg_items_per_user = 18.0;
  cfg.seed = 77;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = fast ? 16 : 48;
  const uint32_t k = 20;
  const size_t batches_per_point = fast ? 8 : 30;

  Rng rng(5);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  model.Forward(rng);

  std::printf("serve bench: %u users, %u items, dim %zu, k %u\n",
              data.num_users(), data.num_items(), dim, k);

  const std::vector<size_t> batch_sizes = {1, 16, 256};
  std::vector<ServePoint> points;
  for (size_t threads : ThreadCounts()) {
    serve::ServeConfig sc;
    sc.max_k = k;
    sc.cache_rankings = false;  // measure scoring, not cache hits
    sc.runtime.num_threads = threads;
    serve::InferenceService service(data, model, sc);
    for (size_t batch : batch_sizes) {
      const std::vector<serve::TopKRequest> reqs =
          MakeRequests(batch * batches_per_point, data.num_users(), k, 31);
      // Warm-up batch (pool wake-up, allocator).
      service.HandleBatch({reqs.data(), batch});
      std::vector<double> latencies_ms;
      latencies_ms.reserve(batches_per_point);
      double total_secs = 0.0;
      for (size_t b = 0; b < batches_per_point; ++b) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto resps =
            service.HandleBatch({reqs.data() + b * batch, batch});
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        latencies_ms.push_back(secs * 1000.0);
        total_secs += secs;
        if (resps.size() != batch) return 1;  // paranoia
      }
      std::sort(latencies_ms.begin(), latencies_ms.end());
      ServePoint p;
      p.threads = threads;
      p.batch = batch;
      p.p50_ms = Percentile(latencies_ms, 0.50);
      p.p99_ms = Percentile(latencies_ms, 0.99);
      p.requests_per_sec =
          static_cast<double>(batch * batches_per_point) / total_secs;
      points.push_back(p);
      std::printf(
          "threads=%zu batch=%-3zu  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
          threads, batch, p.p50_ms, p.p99_ms, p.requests_per_sec);
    }
  }

  // ---- determinism probe: responses must match the 1-thread service ----
  bool identical = true;
  {
    const std::vector<serve::TopKRequest> probe =
        MakeRequests(64, data.num_users(), k, 97);
    serve::ServeConfig sc;
    sc.max_k = k;
    sc.cache_rankings = false;
    sc.runtime.num_threads = 1;
    serve::InferenceService baseline(data, model, sc);
    const auto want = baseline.HandleBatch(probe);
    for (size_t threads : ThreadCounts()) {
      sc.runtime.num_threads = threads;
      serve::InferenceService service(data, model, sc);
      const auto got = service.HandleBatch(probe);
      for (size_t r = 0; r < probe.size(); ++r) {
        identical = identical && got[r].items == want[r].items &&
                    got[r].scores == want[r].scores;
      }
    }
  }
  std::printf("bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");

  // ---- machine-readable output ----
  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n",
               runtime::ResolveNumThreads(0));
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"dim\": %zu, \"k\": %u},\n",
               data.num_users(), data.num_items(), dim, k);
  std::fprintf(out, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ServePoint& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"batch\": %zu, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"requests_per_sec\": %.1f}%s\n",
                 p.threads, p.batch, p.p50_ms, p.p99_ms, p.requests_per_sec,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"bit_identical\": %s\n", identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_serve.json\n");
  return identical ? 0 : 1;
}
