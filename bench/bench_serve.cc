// Inference-service bench: per-batch latency percentiles (p50/p99) and
// request throughput for the sharded top-k scorer across its four
// serving modes — exact fp32 scan, int8 quantized two-phase scan
// (ServeConfig::quantize), fp16 two-phase scan (ServeConfig::fp16),
// and IVF approximate retrieval (ServeConfig::exact = false) — across
// batch sizes and 1 / 2 / hardware threads. Probes gate the exit code:
// quantized responses must be bit-identical to the exact 1-thread
// baseline for every worker count; IVF responses must be bit-identical
// across thread counts, shard grains, and batch packings (and equal the
// exact scan outright at nprobe >= nlist with fp32 lists); fp16
// responses must be bit-identical across thread counts and batch
// packings at the fixed shard grain. Emits machine-readable
// BENCH_serve.json into the working directory.
//
// An ANN tier sweeps (nlist, nprobe) and reports recall@k of each
// point's response lists against the exact scorer's, plus req/s; the
// headline is the fastest point clearing the 0.95 recall floor and its
// speedup over the exact scan under the same harness. The embedding
// tables are rewritten as clustered unit vectors (shared centers +
// small Gaussian noise) before serving: random-init tables have no
// neighborhood structure, so ANN recall on them measures noise rather
// than the index, while clustered tables mirror the locality trained
// embeddings have. Throughput and every bit-identity probe are
// insensitive to the table values.
//
// A second, closed-loop tier drives the concurrent front door
// (serve::ServingFrontEnd): N producer threads each keep exactly one
// request outstanding (submit, wait, repeat), so the adaptive
// micro-batcher — not a pre-packed batch — decides the batching.
// Reports per-request p50/p99 and aggregate req/s at several producer
// counts, plus a sustained train-and-serve scenario where snapshots
// are hot-swapped mid-traffic. Every front-door response is probed
// bit-identical to the synchronous path against the snapshot that
// served it; the probe gates the exit code alongside the quantized one.
//
// A loopback socket tier then re-runs the closed loop through
// serve::NetServer: the same producer counts, but each producer is a
// TCP client on 127.0.0.1 speaking the wire grammar (wire.h), so the
// delta against the in-process front-door points is the cost of the
// transport itself — epoll loops, line parsing, the completion pump,
// and kernel round trips. Every response line is probed bytewise
// against wire::FormatResponse over the synchronous path; the probe
// gates the exit code alongside the others.
//
// An overload tier then pushes the front door past its service rate
// with an open-loop burst (a fault injector bounds service
// deterministically) and reports goodput, shed rate, deadline-miss
// rate, degraded fraction, and queue-wait p50/p99. Its probes gate the
// exit code too: the admission accounting identity (served + shed +
// deadline-missed == submitted, on both harvest and stats sides), the
// queue-depth bound, a forced-expiry sub-run proving a deadline-missed
// request is never fulfilled, and tier bit-identity of every served
// response (exact or the published brownout tier).
//
// The ranking cache is disabled so every request pays full catalog
// scoring — the numbers measure the scorer, not the cache.
//
// Tiers:
//   BSLREC_FAST=1   tiny catalog, few reps (CI smoke)
//   BSLREC_SCALE=1  serving-scale: 100k-item catalog, dim 128,
//                   power-law (zipf) item popularity — the regime where
//                   the 4x memory-traffic cut of the int8 scan shows up
//                   as req/s. On a multi-core host quantized should
//                   beat exact here; single-core it is informational.
//   (neither)       mid-size default
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "math/vec.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "serve/fault_injector.h"
#include "serve/inference_service.h"
#include "serve/net_server.h"
#include "serve/ranking_engine.h"
#include "serve/serving_frontend.h"
#include "serve/wire.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

struct ServePoint {
  const char* mode;  // "exact" | "quantized" | "fp16" | "ivf"
  size_t threads;
  size_t batch;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
};

// One (nlist, nprobe) sweep point of the ANN tier.
struct AnnPoint {
  uint32_t nlist;
  uint32_t nprobe;
  double recall_at_k;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
};

std::vector<size_t> ThreadCounts() {
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

// Nearest-rank percentile (ceil(p*n)-th order statistic), so "p99"
// reports at least the 99th percentile even at small sample counts
// instead of silently rounding down into the body of the distribution.
double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[std::min(sorted_ms.size(), std::max<size_t>(rank, 1)) - 1];
}

// Deterministic request stream: users cycle through a seeded shuffle so
// every (mode, threads, batch) point serves the same traffic.
std::vector<serve::TopKRequest> MakeRequests(size_t count,
                                             uint32_t num_users,
                                             uint32_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<serve::TopKRequest> reqs(count);
  for (serve::TopKRequest& req : reqs) {
    req.user = static_cast<uint32_t>(rng.NextIndex(num_users));
    req.k = k;
  }
  return reqs;
}

serve::ServeConfig MakeConfig(uint32_t k, size_t threads, const char* mode) {
  serve::ServeConfig sc;
  sc.max_k = k;
  sc.cache_rankings = false;  // measure scoring, not cache hits
  sc.runtime.num_threads = threads;
  if (std::strcmp(mode, "quantized") == 0) sc.quantize = true;
  if (std::strcmp(mode, "fp16") == 0) sc.fp16 = true;
  if (std::strcmp(mode, "ivf") == 0) sc.exact = false;  // auto nlist, nprobe 8
  return sc;
}

// Rewrites both embedding tables in place as `num_clusters` shared unit
// centers plus small per-row Gaussian noise (noise L2 ~= 0.15 against
// unit centers, split evenly across dimensions). Users then score their
// own cluster's items far above the rest, giving the catalog the
// neighborhood structure that makes the ANN tier's recall-vs-nprobe
// curve meaningful. Call Forward() afterwards to refresh the served
// embeddings.
void ClusterEmbeddings(MfModel& model, size_t num_clusters, Rng& rng) {
  std::vector<ParamGrad> params = model.Params();
  const size_t dim = params[0].value->cols();
  const float sigma = 0.15f / std::sqrt(static_cast<float>(dim));
  std::vector<float> centers(num_clusters * dim);
  for (size_t c = 0; c < num_clusters; ++c) {
    float* row = centers.data() + c * dim;
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.NextGaussian());
    }
    vec::Normalize(row, row, dim);
  }
  for (ParamGrad& pg : params) {
    Matrix& m = *pg.value;
    for (size_t r = 0; r < m.rows(); ++r) {
      const float* center = centers.data() + rng.NextIndex(num_clusters) * dim;
      float* row = m.Row(r);
      for (size_t j = 0; j < dim; ++j) {
        row[j] = center[j] + sigma * static_cast<float>(rng.NextGaussian());
      }
    }
  }
}

// ---- closed-loop front-door load generator ----

struct FrontEndPoint {
  size_t producers;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
  uint64_t size_flushes;
  uint64_t deadline_flushes;
};

// One producer-count point of the loopback socket tier.
struct NetPoint {
  size_t producers;
  double p50_ms;
  double p99_ms;
  double requests_per_sec;
};

// ---- loopback client plumbing for the net tier ----

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads one '\n'-terminated line (newline stripped); `buf` carries
// leftover bytes between calls.
bool RecvLine(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

struct ClosedLoopResult {
  std::vector<std::vector<serve::ServedResponse>> responses;  // per producer
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_sec = 0.0;
};

// N producers, each with its own deterministic request stream, each
// keeping one request in flight (submit, wait, repeat). Returns every
// response so the caller can probe bit-identity.
ClosedLoopResult RunClosedLoop(
    serve::ServingFrontEnd& frontend,
    const std::vector<std::vector<serve::TopKRequest>>& streams) {
  const size_t producers = streams.size();
  ClosedLoopResult result;
  result.responses.resize(producers);
  std::vector<std::vector<double>> latencies(producers);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      result.responses[p].reserve(streams[p].size());
      latencies[p].reserve(streams[p].size());
      for (const serve::TopKRequest& req : streams[p]) {
        const auto s = std::chrono::steady_clock::now();
        result.responses[p].push_back(frontend.HandleSync(req));
        latencies[p].push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          s)
                .count() *
            1000.0);
      }
    });
  }
  size_t total_requests = 0;
  for (size_t p = 0; p < producers; ++p) {
    threads[p].join();
    total_requests += streams[p].size();
  }
  const double total_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  result.requests_per_sec =
      total_secs > 0.0 ? static_cast<double>(total_requests) / total_secs
                       : 0.0;
  return result;
}

bool SameResponse(const serve::TopKResponse& got,
                  const serve::TopKResponse& want) {
  return got.items == want.items && got.scores == want.scores;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  const bool scale = bench::ScaleMode();
  SyntheticConfig cfg;
  if (scale) {
    // Serving-scale: catalog far beyond cache, production embedding
    // width, zipf popularity so the item-degree distribution is skewed
    // like real traffic.
    cfg.num_users = 2000;
    cfg.num_items = 100000;
    cfg.num_clusters = 25;
    cfg.avg_items_per_user = 25.0;
    cfg.zipf_alpha = 1.1;
  } else {
    cfg.num_users = fast ? 400 : 1500;
    cfg.num_items = fast ? 300 : 1200;
    cfg.num_clusters = 10;
    cfg.avg_items_per_user = 18.0;
  }
  cfg.seed = 77;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = scale ? 128 : (fast ? 16 : 48);
  const uint32_t k = 20;
  const size_t batches_per_point = scale ? 10 : (fast ? 8 : 30);
  const std::vector<size_t> batch_sizes =
      scale ? std::vector<size_t>{64, 256} : std::vector<size_t>{1, 16, 256};

  Rng rng(5);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  ClusterEmbeddings(model, cfg.num_clusters, rng);
  model.Forward(rng);

  std::printf("serve bench%s: %u users, %u items, dim %zu, k %u, "
              "%zu embedding clusters\n",
              scale ? " [scale tier]" : "", data.num_users(),
              data.num_items(), dim, k,
              static_cast<size_t>(cfg.num_clusters));

  std::vector<ServePoint> points;
  for (size_t threads : ThreadCounts()) {
    for (const char* mode : {"exact", "quantized", "fp16", "ivf"}) {
      serve::InferenceService service(data, model,
                                      MakeConfig(k, threads, mode));
      for (size_t batch : batch_sizes) {
        const std::vector<serve::TopKRequest> reqs =
            MakeRequests(batch * batches_per_point, data.num_users(), k, 31);
        // Warm-up batch (pool wake-up, allocator).
        service.HandleBatch({reqs.data(), batch});
        std::vector<double> latencies_ms;
        latencies_ms.reserve(batches_per_point);
        double total_secs = 0.0;
        for (size_t b = 0; b < batches_per_point; ++b) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto resps =
              service.HandleBatch({reqs.data() + b * batch, batch});
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          latencies_ms.push_back(secs * 1000.0);
          total_secs += secs;
          if (resps.size() != batch) return 1;  // paranoia
        }
        std::sort(latencies_ms.begin(), latencies_ms.end());
        ServePoint p;
        p.mode = mode;
        p.threads = threads;
        p.batch = batch;
        p.p50_ms = Percentile(latencies_ms, 0.50);
        p.p99_ms = Percentile(latencies_ms, 0.99);
        p.requests_per_sec =
            static_cast<double>(batch * batches_per_point) / total_secs;
        points.push_back(p);
        std::printf(
            "%-9s threads=%zu batch=%-3zu  p50 %.3f ms  p99 %.3f ms  "
            "%.0f req/s\n",
            p.mode, threads, batch, p.p50_ms, p.p99_ms, p.requests_per_sec);
      }
    }
  }

  // Quantized-vs-exact throughput at the widest point (hw threads,
  // largest batch): the headline the scale tier exists to measure.
  double speedup_at_hw = 0.0;
  {
    double exact_rps = 0.0, quant_rps = 0.0;
    for (const ServePoint& p : points) {
      if (p.threads == ThreadCounts().back() &&
          p.batch == batch_sizes.back()) {
        if (std::strcmp(p.mode, "exact") == 0) exact_rps = p.requests_per_sec;
        if (std::strcmp(p.mode, "quantized") == 0) {
          quant_rps = p.requests_per_sec;
        }
      }
    }
    if (exact_rps > 0.0) speedup_at_hw = quant_rps / exact_rps;
    std::printf("quantized vs exact at hw threads, batch %zu: %.2fx\n",
                batch_sizes.back(), speedup_at_hw);
    if (runtime::ResolveNumThreads(0) > 1) {
      std::printf("quantized strictly faster at hw threads: %s\n",
                  speedup_at_hw > 1.0 ? "yes" : "NO");
    } else {
      std::printf(
          "single hardware core: phase-1 bandwidth win is muted "
          "(informational only)\n");
    }
  }

  // ---- bit-identity probe (gates the exit code) ----
  // Every mode at every worker count must reproduce the exact scorer's
  // 1-thread responses bitwise — the quantized scan is an acceleration
  // structure, never a different ranking function.
  bool identical = true;
  serve::CatalogScorer::Stats quant_stats;
  {
    const std::vector<serve::TopKRequest> probe =
        MakeRequests(scale ? 32 : 64, data.num_users(), k, 97);
    serve::InferenceService baseline(data, model, MakeConfig(k, 1, "exact"));
    const auto want = baseline.HandleBatch(probe);
    for (size_t threads : ThreadCounts()) {
      for (const char* mode : {"exact", "quantized"}) {
        serve::InferenceService service(data, model,
                                        MakeConfig(k, threads, mode));
        const auto got = service.HandleBatch(probe);
        for (size_t r = 0; r < probe.size(); ++r) {
          identical = identical && got[r].items == want[r].items &&
                      got[r].scores == want[r].scores;
        }
        if (std::strcmp(mode, "quantized") == 0) {
          const serve::CatalogScorer::Stats st = service.scorer().stats();
          quant_stats.shards_scanned += st.shards_scanned;
          quant_stats.shards_fallback += st.shards_fallback;
        }
      }
    }
  }
  std::printf("quantized/exact bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("quantized probe scan: %llu shard tasks, %llu exact fallbacks\n",
              static_cast<unsigned long long>(quant_stats.shards_scanned),
              static_cast<unsigned long long>(quant_stats.shards_fallback));

  // ---- ANN determinism probes (gate the exit code) ----
  // IVF responses are a pure function of (snapshot, request): the
  // per-query probe/scan/re-rank kernel is serial and the pool only
  // parallelizes across queries, so thread count, shard grain (unused
  // in ANN mode), and batch packing must not move a bit. And with fp32
  // lists and nprobe >= nlist the "approximation" visits the whole
  // catalog, so it must reproduce the exact scan outright.
  bool ann_identical = true;
  {
    const std::vector<serve::TopKRequest> probe =
        MakeRequests(scale ? 32 : 64, data.num_users(), k, 131);
    const uint32_t probe_nlist = 16;
    const auto ann_cfg = [&](size_t threads, uint32_t grain,
                             uint32_t nprobe) {
      serve::ServeConfig sc = MakeConfig(k, threads, "ivf");
      sc.ivf.nlist = probe_nlist;
      sc.nprobe = nprobe;
      sc.items_per_shard = grain;
      return sc;
    };
    serve::InferenceService baseline(data, model, ann_cfg(1, 2048, 4));
    const auto want = baseline.HandleBatch(probe);
    for (size_t threads : ThreadCounts()) {
      for (uint32_t grain : {512u, 2048u}) {
        serve::InferenceService service(data, model,
                                        ann_cfg(threads, grain, 4));
        const auto whole = service.HandleBatch(probe);
        for (size_t r = 0; r < probe.size(); ++r) {
          ann_identical = ann_identical && SameResponse(whole[r], want[r]);
          // Re-serve one-by-one: batch packing must not matter either.
          ann_identical = ann_identical &&
                          SameResponse(service.Handle(probe[r]), want[r]);
        }
      }
    }
    serve::InferenceService exact_ref(data, model, MakeConfig(k, 1, "exact"));
    const auto exact_want = exact_ref.HandleBatch(probe);
    serve::InferenceService full_probe(
        data, model, ann_cfg(ThreadCounts().back(), 2048, probe_nlist));
    const auto full = full_probe.HandleBatch(probe);
    for (size_t r = 0; r < probe.size(); ++r) {
      ann_identical = ann_identical && SameResponse(full[r], exact_want[r]);
    }
  }
  std::printf("ivf bit-identical across threads/grains/batching and "
              "full-probe == exact: %s\n",
              ann_identical ? "yes" : "NO — BUG");

  // fp16 candidate sets depend on the shard grain (topk_scorer.h), so
  // the grain stays fixed here: at a fixed grain the fp16 scan must be
  // bit-identical across thread counts and batch packings.
  bool fp16_identical = true;
  {
    const std::vector<serve::TopKRequest> probe =
        MakeRequests(scale ? 32 : 64, data.num_users(), k, 137);
    serve::InferenceService baseline(data, model, MakeConfig(k, 1, "fp16"));
    const auto want = baseline.HandleBatch(probe);
    for (size_t threads : ThreadCounts()) {
      serve::InferenceService service(data, model,
                                      MakeConfig(k, threads, "fp16"));
      const auto whole = service.HandleBatch(probe);
      for (size_t r = 0; r < probe.size(); ++r) {
        fp16_identical = fp16_identical && SameResponse(whole[r], want[r]);
        fp16_identical = fp16_identical &&
                         SameResponse(service.Handle(probe[r]), want[r]);
      }
    }
  }
  std::printf("fp16 bit-identical across threads/batching: %s\n",
              fp16_identical ? "yes" : "NO — BUG");

  // ---- ANN tier: (nlist, nprobe) sweep, recall@k vs exact ----
  // Each point serves the same request stream as an exact reference run
  // under the same harness (hw threads, fixed batch); recall@k is the
  // mean fraction of the exact top-k reproduced per response. The
  // headline is the fastest point clearing the 0.95 recall floor (the
  // CI gate); if nothing clears it — which would itself be a finding —
  // the highest-recall point is reported so the floor check fails
  // loudly rather than on a missing key.
  std::vector<AnnPoint> ann_points;
  double ann_exact_rps = 0.0;
  double ann_recall = 0.0;
  double ann_speedup = 0.0;
  uint32_t ann_headline_nlist = 0;
  uint32_t ann_headline_nprobe = 0;
  serve::CatalogScorer::Stats ivf_stats;
  {
    const size_t hw = ThreadCounts().back();
    const size_t ann_batch = 64;
    const size_t ann_batches = scale ? 8 : (fast ? 2 : 4);
    const std::vector<serve::TopKRequest> reqs =
        MakeRequests(ann_batch * ann_batches, data.num_users(), k, 211);
    const auto run_stream = [&](serve::InferenceService& service,
                                std::vector<serve::TopKResponse>& responses,
                                double& p50_ms, double& p99_ms) {
      responses.clear();
      responses.reserve(reqs.size());
      service.HandleBatch({reqs.data(), ann_batch});  // warm-up
      std::vector<double> lat;
      lat.reserve(ann_batches);
      double total_secs = 0.0;
      for (size_t b = 0; b < ann_batches; ++b) {
        const auto t0 = std::chrono::steady_clock::now();
        auto out = service.HandleBatch({reqs.data() + b * ann_batch,
                                        ann_batch});
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        lat.push_back(secs * 1000.0);
        total_secs += secs;
        for (serve::TopKResponse& resp : out) {
          responses.push_back(std::move(resp));
        }
      }
      std::sort(lat.begin(), lat.end());
      p50_ms = Percentile(lat, 0.50);
      p99_ms = Percentile(lat, 0.99);
      return total_secs > 0.0
                 ? static_cast<double>(reqs.size()) / total_secs
                 : 0.0;
    };
    std::vector<serve::TopKResponse> exact_resps;
    {
      serve::InferenceService exact_service(data, model,
                                            MakeConfig(k, hw, "exact"));
      double p50 = 0.0, p99 = 0.0;
      ann_exact_rps = run_stream(exact_service, exact_resps, p50, p99);
    }
    std::printf("ann sweep: %zu requests, exact reference %.0f req/s\n",
                reqs.size(), ann_exact_rps);
    const std::vector<uint32_t> nlists =
        scale ? std::vector<uint32_t>{64, 256}
              : (fast ? std::vector<uint32_t>{8, 16}
                      : std::vector<uint32_t>{16, 32});
    for (uint32_t nlist : nlists) {
      for (uint32_t nprobe : {1u, 2u, 4u, 8u, 16u}) {
        if (nprobe > nlist) continue;
        serve::ServeConfig sc = MakeConfig(k, hw, "ivf");
        sc.ivf.nlist = nlist;
        sc.nprobe = nprobe;
        serve::InferenceService service(data, model, sc);
        std::vector<serve::TopKResponse> resps;
        AnnPoint p;
        p.nlist = nlist;
        p.nprobe = nprobe;
        p.requests_per_sec = run_stream(service, resps, p.p50_ms, p.p99_ms);
        double recall_sum = 0.0;
        size_t counted = 0;
        for (size_t r = 0; r < reqs.size(); ++r) {
          std::vector<uint32_t> truth = exact_resps[r].items;
          if (truth.empty()) continue;
          std::sort(truth.begin(), truth.end());
          size_t hits = 0;
          for (const uint32_t item : resps[r].items) {
            hits += std::binary_search(truth.begin(), truth.end(), item)
                        ? 1
                        : 0;
          }
          recall_sum += static_cast<double>(hits) /
                        static_cast<double>(truth.size());
          ++counted;
        }
        p.recall_at_k =
            counted > 0 ? recall_sum / static_cast<double>(counted) : 1.0;
        const serve::CatalogScorer::Stats st = service.scorer().stats();
        ivf_stats.ivf_queries += st.ivf_queries;
        ivf_stats.ivf_lists += st.ivf_lists;
        ivf_stats.ivf_candidates += st.ivf_candidates;
        ivf_stats.ivf_reranked += st.ivf_reranked;
        ann_points.push_back(p);
        std::printf(
            "ivf nlist=%-4u nprobe=%-3u  recall@%u %.4f  p50 %.3f ms  "
            "p99 %.3f ms  %.0f req/s (%.2fx exact)\n",
            p.nlist, p.nprobe, k, p.recall_at_k, p.p50_ms, p.p99_ms,
            p.requests_per_sec,
            ann_exact_rps > 0.0 ? p.requests_per_sec / ann_exact_rps : 0.0);
      }
    }
    const double kRecallFloor = 0.95;
    const AnnPoint* headline = nullptr;
    for (const AnnPoint& p : ann_points) {
      if (p.recall_at_k >= kRecallFloor &&
          (headline == nullptr ||
           p.requests_per_sec > headline->requests_per_sec)) {
        headline = &p;
      }
    }
    if (headline == nullptr) {
      for (const AnnPoint& p : ann_points) {
        if (headline == nullptr || p.recall_at_k > headline->recall_at_k) {
          headline = &p;
        }
      }
    }
    if (headline != nullptr) {
      ann_recall = headline->recall_at_k;
      ann_speedup = ann_exact_rps > 0.0
                        ? headline->requests_per_sec / ann_exact_rps
                        : 0.0;
      ann_headline_nlist = headline->nlist;
      ann_headline_nprobe = headline->nprobe;
      std::printf(
          "ann headline: nlist=%u nprobe=%u  recall@%u %.4f  "
          "%.2fx exact req/s\n",
          ann_headline_nlist, ann_headline_nprobe, k, ann_recall,
          ann_speedup);
    }
  }

  // ---- concurrent front door: closed-loop load at N producers ----
  // Every response is compared bit-for-bit against the synchronous
  // path (InferenceService::Handle on the same model) — queueing and
  // micro-batching must move latency, never results.
  serve::FrontEndConfig fe_cfg;
  fe_cfg.max_batch = 16;
  fe_cfg.flush_deadline_us = 200;
  fe_cfg.serve = MakeConfig(k, 0, "exact");  // hw threads, exact scan
  const std::vector<size_t> producer_counts =
      fast ? std::vector<size_t>{1, 2, 4} : std::vector<size_t>{1, 2, 4, 8};
  const size_t reqs_per_producer = scale ? 40 : (fast ? 30 : 120);

  bool frontdoor_identical = true;
  std::vector<FrontEndPoint> fe_points;
  {
    serve::InferenceService sync_baseline(data, model,
                                          MakeConfig(k, 1, "exact"));
    std::printf("front door: max_batch=%zu flush_deadline_us=%u "
                "(closed loop, %zu reqs/producer)\n",
                fe_cfg.max_batch, fe_cfg.flush_deadline_us,
                reqs_per_producer);
    for (size_t producers : producer_counts) {
      std::vector<std::vector<serve::TopKRequest>> streams(producers);
      for (size_t p = 0; p < producers; ++p) {
        streams[p] = MakeRequests(reqs_per_producer, data.num_users(), k,
                                  1000 + 17 * p);
      }
      serve::ServingFrontEnd frontend(data, model, fe_cfg);
      const ClosedLoopResult run = RunClosedLoop(frontend, streams);
      const serve::FrontEndStats st = frontend.stats();
      // Probe: bit-identity per request vs the synchronous path (one
      // sync response per distinct user at this fixed k).
      std::unordered_map<uint32_t, serve::TopKResponse> want;
      for (size_t p = 0; p < producers; ++p) {
        for (size_t r = 0; r < streams[p].size(); ++r) {
          const serve::TopKRequest& req = streams[p][r];
          auto it = want.find(req.user);
          if (it == want.end()) {
            it = want.emplace(req.user, sync_baseline.Handle(req)).first;
          }
          const serve::ServedResponse& got = run.responses[p][r];
          frontdoor_identical = frontdoor_identical &&
                                SameResponse(got.topk, it->second) &&
                                got.snapshot_seq == 1;
        }
      }
      FrontEndPoint fp;
      fp.producers = producers;
      fp.p50_ms = run.p50_ms;
      fp.p99_ms = run.p99_ms;
      fp.requests_per_sec = run.requests_per_sec;
      fp.size_flushes = st.size_flushes;
      fp.deadline_flushes = st.deadline_flushes;
      fe_points.push_back(fp);
      std::printf(
          "frontdoor producers=%zu  p50 %.3f ms  p99 %.3f ms  %.0f req/s  "
          "(%llu size / %llu deadline flushes)\n",
          producers, fp.p50_ms, fp.p99_ms, fp.requests_per_sec,
          static_cast<unsigned long long>(fp.size_flushes),
          static_cast<unsigned long long>(fp.deadline_flushes));
    }
  }
  std::printf("front door bit-identical to synchronous path: %s\n",
              frontdoor_identical ? "yes" : "NO — BUG");

  // ---- loopback socket tier: the closed loop through NetServer ----
  // Same producer counts and per-producer request volume as the
  // in-process points above; each producer is a loopback TCP client
  // keeping one wire-grammar request line in flight. Every response
  // line is compared bytewise against wire::FormatResponse over the
  // synchronous path (the socket analogue of the front-door probe).
  bool net_identical = true;
  std::vector<NetPoint> net_points;
  const size_t net_io_threads = 2;
  {
    serve::InferenceService sync_baseline(data, model,
                                          MakeConfig(k, 1, "exact"));
    serve::ServingFrontEnd frontend(data, model, fe_cfg);
    serve::NetServerConfig net_cfg;
    net_cfg.io_threads = net_io_threads;
    serve::NetServer server(frontend, net_cfg);
    if (!server.Start()) {
      std::fprintf(stderr, "net tier: %s\n", server.last_error().c_str());
      return 1;
    }
    std::printf("net transport: loopback port %u, %zu io threads\n",
                server.port(), net_io_threads);
    for (size_t producers : producer_counts) {
      std::vector<std::vector<serve::TopKRequest>> streams(producers);
      for (size_t p = 0; p < producers; ++p) {
        streams[p] = MakeRequests(reqs_per_producer, data.num_users(), k,
                                  3000 + 29 * p);
      }
      std::vector<std::vector<std::string>> lines(producers);
      std::vector<std::vector<double>> lat(producers);
      std::atomic<bool> net_ok{true};
      std::vector<std::thread> clients;
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t p = 0; p < producers; ++p) {
        clients.emplace_back([&, p] {
          const int fd = ConnectLoopback(server.port());
          if (fd < 0) {
            net_ok = false;
            return;
          }
          std::string buf, line;
          char msg[64];
          lines[p].reserve(streams[p].size());
          lat[p].reserve(streams[p].size());
          for (const serve::TopKRequest& req : streams[p]) {
            const int len = std::snprintf(msg, sizeof(msg), "TOPK %u %u\n",
                                          req.user, req.k);
            const auto s = std::chrono::steady_clock::now();
            if (!SendAll(fd, msg, static_cast<size_t>(len)) ||
                !RecvLine(fd, buf, line)) {
              net_ok = false;
              break;
            }
            lat[p].push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - s)
                    .count() *
                1000.0);
            lines[p].push_back(line);
          }
          ::close(fd);
        });
      }
      for (std::thread& t : clients) t.join();
      const double total_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      net_identical = net_identical && net_ok.load();
      // Probe: bytewise identity against the wire-formatted sync path
      // (no ID sent, so responses echo "-"; seq 1, no brownout).
      std::unordered_map<uint32_t, std::string> want;
      size_t total_requests = 0;
      std::vector<double> all;
      for (size_t p = 0; p < producers; ++p) {
        net_identical =
            net_identical && lines[p].size() == streams[p].size();
        for (size_t r = 0; r < lines[p].size(); ++r) {
          const serve::TopKRequest& req = streams[p][r];
          auto it = want.find(req.user);
          if (it == want.end()) {
            it = want.emplace(req.user,
                              serve::wire::FormatResponse(
                                  "-", serve::DegradeMode::kNone, 1,
                                  sync_baseline.Handle(req)))
                     .first;
          }
          net_identical = net_identical && lines[p][r] == it->second;
        }
        total_requests += streams[p].size();
        all.insert(all.end(), lat[p].begin(), lat[p].end());
      }
      std::sort(all.begin(), all.end());
      NetPoint np;
      np.producers = producers;
      np.p50_ms = Percentile(all, 0.50);
      np.p99_ms = Percentile(all, 0.99);
      np.requests_per_sec =
          total_secs > 0.0 ? static_cast<double>(total_requests) / total_secs
                           : 0.0;
      net_points.push_back(np);
      std::printf(
          "net producers=%zu  p50 %.3f ms  p99 %.3f ms  %.0f req/s\n",
          np.producers, np.p50_ms, np.p99_ms, np.requests_per_sec);
    }
    server.Stop();
  }
  if (!fe_points.empty() && !net_points.empty()) {
    const double fd_rps = fe_points.back().requests_per_sec;
    std::printf(
        "net transport vs in-process front door at %zu producers: %.2fx\n",
        net_points.back().producers,
        fd_rps > 0.0 ? net_points.back().requests_per_sec / fd_rps : 0.0);
  }
  std::printf("net responses bytewise-identical to wire-formatted sync "
              "path: %s\n",
              net_identical ? "yes" : "NO — BUG");

  // ---- sustained train-and-serve: snapshot hot-swap mid-traffic ----
  // A publisher thread pushes freshly frozen snapshots while producers
  // keep the front door under load. Every response must match the
  // synchronous ranking on exactly the snapshot that served it.
  const size_t ts_producers = fast ? 2 : 4;
  const size_t ts_generations = 3;  // initial + 2 hot-swaps
  bool trainserve_matched = true;
  double trainserve_rps = 0.0;
  size_t trainserve_requests = 0;
  {
    // Freeze each generation from a differently-seeded model — stands
    // in for "the trainer stepped, then froze" without paying training
    // time in a serving bench.
    runtime::ThreadPool freeze_pool(0);
    std::vector<std::shared_ptr<const serve::ModelSnapshot>> generations;
    for (size_t g = 0; g < ts_generations; ++g) {
      Rng gen_rng(900 + g);
      MfModel gen_model(data.num_users(), data.num_items(), dim, gen_rng);
      gen_model.Forward(gen_rng);
      generations.push_back(
          std::make_shared<const serve::ModelSnapshot>(gen_model,
                                                       freeze_pool));
    }
    serve::ServingFrontEnd frontend(data, generations[0], fe_cfg);
    std::unordered_map<uint64_t, size_t> seq_to_gen{{1, 0}};

    std::vector<std::vector<serve::TopKRequest>> streams(ts_producers);
    for (size_t p = 0; p < ts_producers; ++p) {
      streams[p] = MakeRequests(reqs_per_producer, data.num_users(), k,
                                5000 + 23 * p);
      trainserve_requests += streams[p].size();
    }
    // Publish the remaining generations spaced through the run, from a
    // separate thread, exactly like a live trainer would.
    std::thread publisher([&] {
      for (size_t g = 1; g < ts_generations; ++g) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        seq_to_gen.emplace(frontend.PublishSnapshot(generations[g]), g);
      }
    });
    const ClosedLoopResult run = RunClosedLoop(frontend, streams);
    publisher.join();
    trainserve_rps = run.requests_per_sec;

    // Verify attribution + bit-identity per generation: each response
    // names its publication, and its ranking equals the synchronous
    // ranking on that very snapshot.
    runtime::ThreadPool ref_pool(1);
    std::vector<std::unique_ptr<serve::RankingEngine>> refs(ts_generations);
    for (size_t p = 0; p < ts_producers; ++p) {
      for (size_t r = 0; r < streams[p].size(); ++r) {
        const serve::ServedResponse& got = run.responses[p][r];
        const auto gen_it = seq_to_gen.find(got.snapshot_seq);
        if (gen_it == seq_to_gen.end()) {
          trainserve_matched = false;  // served an unpublished snapshot?!
          continue;
        }
        const size_t g = gen_it->second;
        trainserve_matched =
            trainserve_matched && got.snapshot == generations[g];
        if (refs[g] == nullptr) {
          refs[g] = std::make_unique<serve::RankingEngine>(
              data, *generations[g], ref_pool, fe_cfg.serve);
        }
        trainserve_matched =
            trainserve_matched &&
            SameResponse(got.topk, refs[g]->Handle(streams[p][r]));
      }
    }
    const serve::FrontEndStats st = frontend.stats();
    std::printf(
        "train-and-serve: %zu producers, %zu requests, %llu snapshots "
        "published, %.0f req/s\n",
        ts_producers, trainserve_requests,
        static_cast<unsigned long long>(st.snapshots_published),
        trainserve_rps);
    std::printf("train-and-serve responses match their snapshot: %s\n",
                trainserve_matched ? "yes" : "NO — BUG");
  }
  // ---- overload tier: open-loop arrival above the service rate ----
  // A fault injector delays every batch, bounding the service rate
  // deterministically; producers then submit the whole request set at
  // once (open loop — nobody waits for a response before sending the
  // next), so arrival exceeds service by construction. The bounded
  // queue sheds, deadlines expire, and brownout kicks in. Reported:
  // goodput, shed rate, deadline-miss rate, degraded fraction, and
  // queue-wait p50/p99. Probes gate the exit code:
  //   - accounting: every submitted request is exactly one of served /
  //     shed / deadline-missed, on both the harvest and stats sides
  //   - depth bound: queue_depth_high_water never exceeds max_queue_depth
  //   - forced-expiry sub-run: a stalled dispatcher plus tiny deadlines
  //     must fulfill zero rankings — a deadline-missed request is never
  //     served
  //   - tier bit-identity: every fulfilled response equals the
  //     single-driver RankingEngine at the tier it reports (exact or
  //     the published brownout tier)
  const size_t ol_total = fast ? 160 : 400;
  size_t ol_served = 0, ol_shed = 0, ol_missed = 0, ol_degraded = 0;
  double ol_goodput = 0.0, ol_wait_p50 = 0.0, ol_wait_p99 = 0.0;
  bool ol_accounting = true;
  bool ol_depth_ok = true;
  bool ol_no_expired_fulfilled = true;
  bool ol_identical = true;
  serve::FrontEndConfig ol_cfg;
  ol_cfg.max_batch = 8;
  ol_cfg.flush_deadline_us = 100;
  ol_cfg.max_queue_depth = 16;
  ol_cfg.overflow = serve::OverflowPolicy::kShedNewest;
  ol_cfg.default_deadline_us = 12000;
  ol_cfg.brownout.enable = true;
  ol_cfg.brownout.high_watermark = 12;
  ol_cfg.brownout.low_watermark = 4;
  ol_cfg.brownout.nprobe = 2;
  ol_cfg.serve = MakeConfig(k, 0, "exact");
  {
    // 3 ms per batch caps service at ~2.7k req/s; the open-loop burst
    // arrives in well under a millisecond.
    ol_cfg.fault_injector = std::make_shared<serve::ScheduledFaultInjector>(
        std::vector<serve::FaultRule>{
            {serve::FaultAction::Kind::kDelay, 0, 1, 0, 3000}},
        /*seed=*/0);
    serve::ServingFrontEnd frontend(data, model, ol_cfg);
    const std::vector<serve::TopKRequest> reqs =
        MakeRequests(ol_total, data.num_users(), k, 31337);
    std::vector<std::future<serve::ServedResponse>> futures(reqs.size());
    const size_t ol_producers = 4;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> senders;
    for (size_t p = 0; p < ol_producers; ++p) {
      senders.emplace_back([&, p] {
        for (size_t i = p; i < reqs.size(); i += ol_producers) {
          futures[i] = frontend.Submit(reqs[i]);
          // Open loop: never wait for a response, but meter the stream
          // so arrival (~8k req/s across producers) sits a few x above
          // service rather than landing as one instantaneous burst.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }
    for (std::thread& t : senders) t.join();
    frontend.Drain();
    const double ol_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const std::shared_ptr<const serve::ModelSnapshot> snap =
        frontend.current_snapshot();
    runtime::ThreadPool ref_pool(1);
    serve::RankingEngine exact_ref(data, *snap, ref_pool, ol_cfg.serve);
    serve::RankingEngine degraded_ref(
        data, *snap, ref_pool,
        serve::BrownoutServeConfigFor(ol_cfg.serve, serve::DegradeMode::kIvf,
                                      ol_cfg.brownout.nprobe));
    std::vector<double> waits_ms;
    for (size_t i = 0; i < futures.size(); ++i) {
      try {
        const serve::ServedResponse resp = futures[i].get();
        ++ol_served;
        waits_ms.push_back(static_cast<double>(resp.queue_us) / 1000.0);
        serve::RankingEngine& ref =
            resp.degraded ? degraded_ref : exact_ref;
        if (resp.degraded) ++ol_degraded;
        ol_identical = ol_identical && resp.snapshot_seq == 1 &&
                       SameResponse(resp.topk, ref.Handle(reqs[i]));
      } catch (const serve::OverloadError&) {
        ++ol_shed;
      } catch (const serve::DeadlineExceededError&) {
        ++ol_missed;
      }
    }
    const serve::FrontEndStats st = frontend.stats();
    ol_goodput = ol_secs > 0.0
                     ? static_cast<double>(ol_served) / ol_secs
                     : 0.0;
    std::sort(waits_ms.begin(), waits_ms.end());
    if (!waits_ms.empty()) {
      ol_wait_p50 = Percentile(waits_ms, 0.50);
      ol_wait_p99 = Percentile(waits_ms, 0.99);
    }
    // Harvest side: every future resolved exactly one way. Stats side:
    // the documented idle-state identity.
    ol_accounting =
        ol_served + ol_shed + ol_missed == reqs.size() &&
        st.submitted == st.requests + st.shed_newest + st.shed_oldest +
                            st.expired_admission;
    ol_depth_ok = st.queue_depth_high_water <= ol_cfg.max_queue_depth;
    std::printf(
        "overload: %zu submitted open-loop -> %zu served (%.0f req/s "
        "goodput), %zu shed (%.1f%%), %zu deadline-missed (%.1f%%), "
        "%zu degraded (%.1f%% of served)\n",
        reqs.size(), ol_served, ol_goodput,
        ol_shed, 100.0 * static_cast<double>(ol_shed) / reqs.size(),
        ol_missed, 100.0 * static_cast<double>(ol_missed) / reqs.size(),
        ol_degraded,
        ol_served > 0
            ? 100.0 * static_cast<double>(ol_degraded) / ol_served
            : 0.0);
    std::printf(
        "overload: queue wait p50 %.3f ms p99 %.3f ms, depth high-water "
        "%llu/%zu, brownout %llu entries\n",
        ol_wait_p50, ol_wait_p99,
        static_cast<unsigned long long>(st.queue_depth_high_water),
        ol_cfg.max_queue_depth,
        static_cast<unsigned long long>(st.brownout_entries));
  }
  {
    // Forced-expiry sub-run: dispatcher stalled past every deadline, so
    // all requests must fail fast at dequeue — zero rankings fulfilled.
    serve::FrontEndConfig ex_cfg = ol_cfg;
    ex_cfg.max_queue_depth = 0;  // nothing sheds; expiry is the only exit
    ex_cfg.default_deadline_us = 2000;
    ex_cfg.fault_injector = std::make_shared<serve::ScheduledFaultInjector>(
        std::vector<serve::FaultRule>{
            {serve::FaultAction::Kind::kStall, 0, 1, 1, 100000}},
        /*seed=*/0);
    serve::ServingFrontEnd frontend(data, model, ex_cfg);
    std::vector<std::future<serve::ServedResponse>> futures;
    for (uint32_t i = 0; i < 20; ++i) {
      serve::TopKRequest req;
      req.user = i % data.num_users();
      req.k = k;
      futures.push_back(frontend.Submit(req));
    }
    size_t fulfilled = 0;
    for (std::future<serve::ServedResponse>& fut : futures) {
      try {
        fut.get();
        ++fulfilled;
      } catch (const serve::DeadlineExceededError&) {
      }
    }
    ol_no_expired_fulfilled = fulfilled == 0;
    std::printf("overload: forced-expiry sub-run fulfilled %zu/20 "
                "(must be 0)\n",
                fulfilled);
  }
  std::printf("overload probes: accounting %s, depth bound %s, "
              "no expired fulfilled %s, tier bit-identical %s\n",
              ol_accounting ? "yes" : "NO — BUG",
              ol_depth_ok ? "yes" : "NO — BUG",
              ol_no_expired_fulfilled ? "yes" : "NO — BUG",
              ol_identical ? "yes" : "NO — BUG");

  identical = identical && ann_identical && fp16_identical &&
              frontdoor_identical && net_identical && trainserve_matched &&
              ol_accounting && ol_depth_ok && ol_no_expired_fulfilled &&
              ol_identical;

  // ---- machine-readable output ----
  FILE* out = bench::BeginBenchJson("BENCH_serve.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"dim\": %zu, \"k\": %u},\n",
               data.num_users(), data.num_items(), dim, k);
  std::fprintf(out, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ServePoint& p = points[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"requests_per_sec\": %.1f}%s\n",
                 p.mode, p.threads, p.batch, p.p50_ms, p.p99_ms,
                 p.requests_per_sec, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"quantized_speedup_at_hw_threads\": %.3f,\n",
               speedup_at_hw);
  std::fprintf(out,
               "  \"quantized_probe_scan\": {\"shard_tasks\": %llu, "
               "\"exact_fallbacks\": %llu},\n",
               static_cast<unsigned long long>(quant_stats.shards_scanned),
               static_cast<unsigned long long>(quant_stats.shards_fallback));
  std::fprintf(out,
               "  \"ann\": {\"k\": %u, \"exact_requests_per_sec\": %.1f, "
               "\"points\": [\n",
               k, ann_exact_rps);
  for (size_t i = 0; i < ann_points.size(); ++i) {
    const AnnPoint& p = ann_points[i];
    std::fprintf(out,
                 "    {\"nlist\": %u, \"nprobe\": %u, "
                 "\"recall_at_k\": %.4f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"requests_per_sec\": %.1f}%s\n",
                 p.nlist, p.nprobe, p.recall_at_k, p.p50_ms, p.p99_ms,
                 p.requests_per_sec, i + 1 < ann_points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ], \"recall_at_k\": %.4f, \"speedup_vs_exact\": %.3f, "
               "\"headline_nlist\": %u, \"headline_nprobe\": %u,\n",
               ann_recall, ann_speedup, ann_headline_nlist,
               ann_headline_nprobe);
  std::fprintf(out,
               "  \"probe_scan\": {\"queries\": %llu, \"lists\": %llu, "
               "\"candidates\": %llu, \"reranked\": %llu},\n",
               static_cast<unsigned long long>(ivf_stats.ivf_queries),
               static_cast<unsigned long long>(ivf_stats.ivf_lists),
               static_cast<unsigned long long>(ivf_stats.ivf_candidates),
               static_cast<unsigned long long>(ivf_stats.ivf_reranked));
  std::fprintf(out,
               "  \"determinism\": {\"ivf_bit_identical\": %s, "
               "\"fp16_bit_identical\": %s}},\n",
               ann_identical ? "true" : "false",
               fp16_identical ? "true" : "false");
  std::fprintf(out,
               "  \"frontend\": {\"max_batch\": %zu, "
               "\"flush_deadline_us\": %u, \"points\": [\n",
               fe_cfg.max_batch, fe_cfg.flush_deadline_us);
  for (size_t i = 0; i < fe_points.size(); ++i) {
    const FrontEndPoint& p = fe_points[i];
    std::fprintf(out,
                 "    {\"producers\": %zu, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"requests_per_sec\": %.1f, "
                 "\"size_flushes\": %llu, \"deadline_flushes\": %llu}%s\n",
                 p.producers, p.p50_ms, p.p99_ms, p.requests_per_sec,
                 static_cast<unsigned long long>(p.size_flushes),
                 static_cast<unsigned long long>(p.deadline_flushes),
                 i + 1 < fe_points.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out, "  \"net\": {\"io_threads\": %zu, \"points\": [\n",
               net_io_threads);
  for (size_t i = 0; i < net_points.size(); ++i) {
    const NetPoint& p = net_points[i];
    std::fprintf(out,
                 "    {\"producers\": %zu, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"requests_per_sec\": %.1f}%s\n",
                 p.producers, p.p50_ms, p.p99_ms, p.requests_per_sec,
                 i + 1 < net_points.size() ? "," : "");
  }
  std::fprintf(out, "  ], \"transport_bit_identical\": %s},\n",
               net_identical ? "true" : "false");
  std::fprintf(out,
               "  \"train_and_serve\": {\"producers\": %zu, "
               "\"snapshots_published\": %zu, \"requests\": %zu, "
               "\"requests_per_sec\": %.1f, \"responses_matched\": %s},\n",
               ts_producers, ts_generations, trainserve_requests,
               trainserve_rps, trainserve_matched ? "true" : "false");
  std::fprintf(out,
               "  \"overload\": {\"max_queue_depth\": %zu, "
               "\"submitted\": %zu, \"served\": %zu, \"shed\": %zu, "
               "\"deadline_missed\": %zu, \"degraded\": %zu,\n",
               ol_cfg.max_queue_depth, ol_total, ol_served, ol_shed,
               ol_missed, ol_degraded);
  std::fprintf(out,
               "    \"goodput_requests_per_sec\": %.1f, "
               "\"shed_rate\": %.4f, \"deadline_miss_rate\": %.4f, "
               "\"degraded_fraction\": %.4f, \"queue_wait_p50_ms\": %.4f, "
               "\"queue_wait_p99_ms\": %.4f,\n",
               ol_goodput,
               static_cast<double>(ol_shed) / static_cast<double>(ol_total),
               static_cast<double>(ol_missed) /
                   static_cast<double>(ol_total),
               ol_served > 0 ? static_cast<double>(ol_degraded) /
                                   static_cast<double>(ol_served)
                             : 0.0,
               ol_wait_p50, ol_wait_p99);
  std::fprintf(out,
               "    \"probes\": {\"accounting\": %s, \"depth_bound\": %s, "
               "\"no_expired_fulfilled\": %s, \"tier_bit_identical\": %s}},\n",
               ol_accounting ? "true" : "false",
               ol_depth_ok ? "true" : "false",
               ol_no_expired_fulfilled ? "true" : "false",
               ol_identical ? "true" : "false");
  bench::FinishBenchJson(out, "BENCH_serve.json", identical);
  return identical ? 0 : 1;
}
