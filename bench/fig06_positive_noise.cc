// Figure 6: relative NDCG@20 of MF+SL as a growing fraction of false
// positives is injected into the training split of each dataset (the test
// split stays clean). Performance declines roughly monotonically.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/noise.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 6: relative NDCG@20 of SL vs positive-noise ratio");
  const std::vector<double> ratios = {0.0, 0.1, 0.2, 0.3, 0.4};

  std::printf("%-22s", "dataset\\noise");
  for (double r : ratios) std::printf("%9.0f%%", 100.0 * r);
  std::printf("\n");
  bb::PrintRule(76);

  for (const auto& cfg : bslrec::AllPresets()) {
    const bslrec::Dataset clean = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("%-22s", cfg.name.c_str());
    double baseline = 0.0;
    for (double r : ratios) {
      bslrec::Rng noise_rng(41);
      const bslrec::Dataset data =
          r > 0.0 ? bslrec::InjectFalsePositives(clean, r, noise_rng) : clean;
      bb::RunSpec spec;
      spec.loss = LossKind::kSoftmax;
      spec.loss_params.tau = 0.6;
      spec.train = bb::DefaultTrainConfig();
      const double ndcg = bb::RunExperiment(data, spec).ndcg;
      if (r == 0.0) baseline = ndcg;
      std::printf("%9.1f%%", baseline > 0.0 ? 100.0 * ndcg / baseline : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: every curve declines from 100%% as positive noise "
      "grows (SL alone has no positive-side denoising).\n");
  return 0;
}
