// Quickstart: train matrix factorization with the Bilateral Softmax Loss
// on a synthetic implicit-feedback dataset and print ranking metrics.
//
//   $ ./example_quickstart
//
// This is the 60-second tour of the public API: generate (or load) a
// Dataset, pick a backbone, pick a loss, train, evaluate.
#include <cstdio>

#include "core/losses.h"
#include "data/synthetic.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

int main() {
  // 1. Data: a Yelp2018-like synthetic catalog (use data/loaders.h to read
  //    a real "user item" interaction file instead).
  const bslrec::SyntheticData synth =
      bslrec::GenerateSynthetic(bslrec::Yelp18Synth());
  const bslrec::Dataset& data = synth.dataset;
  std::printf("dataset: %u users, %u items, %zu train / %zu test edges\n",
              data.num_users(), data.num_items(), data.num_train(),
              data.num_test());

  // 2. Model: plain matrix factorization, 32-dim embeddings.
  bslrec::Rng rng(/*seed=*/42);
  bslrec::MfModel model(data.num_users(), data.num_items(), /*dim=*/32, rng);

  // 3. Loss: BSL with tau1 (positive side) and tau2 (negative side).
  //    tau1 == tau2 recovers the plain Softmax Loss.
  bslrec::BilateralSoftmaxLoss loss(/*tau1=*/0.66, /*tau2=*/0.6);

  // 4. Train with uniform negative sampling.
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::TrainConfig cfg;
  cfg.epochs = 25;
  cfg.num_negatives = 64;
  cfg.lr = 0.05;
  cfg.eval_every = 5;
  bslrec::Trainer trainer(data, model, loss, sampler, cfg);
  const bslrec::TrainResult result = trainer.Train();

  // 5. Report.
  std::printf("best epoch %d:  Recall@20 = %.4f   NDCG@20 = %.4f\n",
              result.best_epoch, result.best.recall, result.best.ndcg);
  for (const bslrec::EpochStats& e : result.history) {
    if (e.epoch % 5 == 0) {
      std::printf("  epoch %2d  avg BSL loss %.4f\n", e.epoch, e.avg_loss);
    }
  }
  return 0;
}
