// Popularity-fairness audit.
//
// Long-tail catalogs make recommenders favor popular items. This example
// trains BPR and SL on the same data, then audits where each model's
// NDCG comes from across ten popularity groups and probes the DRO
// quantities of Lemma 2: SL's implicit variance penalty narrows the
// popular/unpopular gap.
#include <cstdio>
#include <vector>

#include "analysis/dro_analysis.h"
#include "core/dro.h"
#include "core/losses.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "math/stats.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace {

// Trains and returns the model so we can audit its embeddings.
std::unique_ptr<bslrec::MfModel> Train(const bslrec::Dataset& data,
                                       const bslrec::LossFunction& loss) {
  bslrec::Rng rng(5);
  auto model = std::make_unique<bslrec::MfModel>(data.num_users(),
                                                 data.num_items(), 16, rng);
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::TrainConfig cfg;
  cfg.epochs = 20;
  cfg.eval_every = 5;
  bslrec::Trainer trainer(data, *model, loss, sampler, cfg);
  trainer.Train();
  bslrec::Rng fwd(6);
  model->Forward(fwd);
  return model;
}

}  // namespace

int main() {
  // Milder popularity skew than the headline preset so the tail groups
  // carry measurable test mass (see bench/fig04_fairness_weights.cc).
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.zipf_alpha = 0.7;
  cfg.popularity_gamma = 0.35;
  const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
  const bslrec::Evaluator eval(data, 20);

  const bslrec::BprLoss bpr;
  const bslrec::SoftmaxLoss sl(0.6);
  const auto bpr_model = Train(data, bpr);
  const auto sl_model = Train(data, sl);

  std::printf("group-wise NDCG@20 (group 10 = most popular items)\n");
  std::printf("%-6s", "grp");
  for (int g = 1; g <= 10; ++g) std::printf("%8d", g);
  std::printf("\n");
  const auto bpr_groups = eval.GroupNdcg(*bpr_model, 10);
  const auto sl_groups = eval.GroupNdcg(*sl_model, 10);
  std::printf("%-6s", "BPR");
  for (double g : bpr_groups) std::printf("%8.4f", g);
  std::printf("\n%-6s", "SL");
  for (double g : sl_groups) std::printf("%8.4f", g);
  std::printf("\n");

  // Lemma-2 probe: the variance of SL's negative predictions should be
  // smaller than BPR's — the mechanism behind the fairer split above.
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::Rng p1(9), p2(9);
  const auto bpr_probe =
      bslrec::CollectNegativeScores(*bpr_model, data, sampler, 128, 64, p1);
  const auto sl_probe =
      bslrec::CollectNegativeScores(*sl_model, data, sampler, 128, 64, p2);
  std::printf("\nnegative-score variance:  BPR %.5f   SL %.5f\n",
              bpr_probe.variance, sl_probe.variance);
  std::printf("Corollary III.1 tau* at eta=0.5: %.3f (SL probe)\n",
              bslrec::dro::OptimalTau(sl_probe.variance, 0.5));
  std::printf(
      "\nExpected: SL shifts NDCG mass toward unpopular groups and shows "
      "lower prediction variance (its implicit regularizer).\n");
  return 0;
}
