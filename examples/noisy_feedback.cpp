// Noisy-feedback scenario (the paper's motivating use case).
//
// Real click logs contain false positives (clickbait, conformity) and the
// sampled "negatives" contain false negatives (items the user would have
// liked). This example corrupts both sides of a synthetic dataset and
// compares BPR, SL and BSL under identical budgets — reproducing, at
// example scale, the robustness story of Sections III-IV.
#include <cstdio>

#include "core/losses.h"
#include "data/noise.h"
#include "data/synthetic.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace {

double TrainNdcg(const bslrec::Dataset& data,
                 const bslrec::LossFunction& loss,
                 const bslrec::NegativeSampler& sampler) {
  bslrec::Rng rng(7);
  bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
  bslrec::TrainConfig cfg;
  cfg.epochs = 18;
  cfg.num_negatives = 32;
  cfg.eval_every = 6;
  bslrec::Trainer trainer(data, model, loss, sampler, cfg);
  return trainer.Train().best.ndcg;
}

}  // namespace

int main() {
  const bslrec::Dataset clean =
      bslrec::GenerateSynthetic(bslrec::GowallaSynth()).dataset;

  // Corrupt 30% of the training positives; keep the test split clean.
  bslrec::Rng noise_rng(13);
  const bslrec::Dataset noisy =
      bslrec::InjectFalsePositives(clean, 0.30, noise_rng);

  // A sampler that serves true positives as negatives 5x too often.
  bslrec::NoisyNegativeSampler noisy_sampler(noisy, /*r_noise=*/5.0);
  bslrec::UniformNegativeSampler clean_sampler(noisy);

  const bslrec::BprLoss bpr;
  const bslrec::SoftmaxLoss sl(0.6);
  const bslrec::BilateralSoftmaxLoss bsl(/*tau1=*/0.9, /*tau2=*/0.6);

  std::printf("30%% false positives, clean negative sampling:\n");
  std::printf("  BPR  NDCG@20 = %.4f\n", TrainNdcg(noisy, bpr, clean_sampler));
  std::printf("  SL   NDCG@20 = %.4f\n", TrainNdcg(noisy, sl, clean_sampler));
  std::printf("  BSL  NDCG@20 = %.4f\n", TrainNdcg(noisy, bsl, clean_sampler));

  std::printf("\n30%% false positives + 5x false-negative sampling odds:\n");
  std::printf("  BPR  NDCG@20 = %.4f\n", TrainNdcg(noisy, bpr, noisy_sampler));
  std::printf("  SL   NDCG@20 = %.4f\n", TrainNdcg(noisy, sl, noisy_sampler));
  std::printf("  BSL  NDCG@20 = %.4f\n", TrainNdcg(noisy, bsl, noisy_sampler));

  std::printf(
      "\nExpected ordering: BSL >= SL > BPR — the Log-Expectation-Exp "
      "structure absorbs noise on both sides (Lemma 1).\n");
  return 0;
}
