// Using bslrec with your own interaction data.
//
// The text format is one "user_id item_id" pair per line ('#' comments
// allowed). This example writes a tiny catalog to disk, loads it back via
// the public loader, trains LightGCN+BSL on it, and prints
// recommendations for one user — the full downstream-user workflow.
#include <cstdio>
#include <fstream>

#include "core/losses.h"
#include "data/loaders.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "models/lightgcn.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

int main() {
  // Normally these files come from your logs; here we synthesize a tiny
  // "three communities" catalog so the example is self-contained.
  const char* train_path = "example_train.txt";
  const char* test_path = "example_test.txt";
  {
    std::ofstream train(train_path);
    std::ofstream test(test_path);
    train << "# community A: users 0-9 like items 0-7\n";
    for (int u = 0; u < 10; ++u) {
      for (int i = 0; i < 8; ++i) {
        if ((u + i) % 4 == 0) {
          test << u << ' ' << i << '\n';
        } else {
          train << u << ' ' << i << '\n';
        }
      }
    }
    for (int u = 10; u < 20; ++u) {
      for (int i = 8; i < 16; ++i) {
        if ((u + i) % 4 == 0) {
          test << u << ' ' << i << '\n';
        } else {
          train << u << ' ' << i << '\n';
        }
      }
    }
    for (int u = 20; u < 30; ++u) {
      for (int i = 16; i < 24; ++i) {
        if ((u + i) % 4 == 0) {
          test << u << ' ' << i << '\n';
        } else {
          train << u << ' ' << i << '\n';
        }
      }
    }
  }

  const auto loaded = bslrec::LoadInteractions(train_path, test_path);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "failed to load interaction files\n");
    return 1;
  }
  const bslrec::Dataset& data = *loaded;
  std::printf("loaded %u users, %u items, %zu train edges\n",
              data.num_users(), data.num_items(), data.num_train());

  // LightGCN propagates over the interaction graph; BSL trains it.
  const bslrec::BipartiteGraph graph(data);
  bslrec::Rng rng(3);
  bslrec::LightGcnModel model(graph, /*dim=*/16, /*num_layers=*/2, rng);
  bslrec::BilateralSoftmaxLoss loss(0.7, 0.6);
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::TrainConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 256;
  cfg.num_negatives = 16;
  cfg.eval_every = 10;
  bslrec::Trainer trainer(data, model, loss, sampler, cfg);
  const auto result = trainer.Train();
  std::printf("Recall@20 = %.4f  NDCG@20 = %.4f\n", result.best.recall,
              result.best.ndcg);

  // Top-2 recommendations for user 0. Its community is items 0-7, of
  // which exactly two are held out of training — a perfect model ranks
  // those two first (train items are masked from recommendations).
  const bslrec::Evaluator eval(data, 2);
  std::printf("user 0 recommendations:");
  for (uint32_t item : eval.TopKForUser(model, 0)) {
    std::printf(" %u", item);
  }
  std::printf("   (expected: the held-out community items, 0-7)\n");

  std::remove(train_path);
  std::remove(test_path);
  return 0;
}
