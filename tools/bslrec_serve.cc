// bslrec_serve — batched top-k inference service CLI.
//
// Loads a dataset and a model checkpoint, freezes the model into a
// serving snapshot, and answers top-k recommendation requests from
// stdin (or --requests=FILE), batching consecutive requests for
// throughput.
//
// Requests are parsed through the shared wire grammar (serve/wire.h —
// the same grammar serve::NetServer speaks on a socket), one request
// per line:
//   <user> [<k>] [all]                        (legacy CLI form)
//   TOPK <user> <k> [FILTER=..] [LANE=..] ...  (wire form)
// where <user> is the user id, <k> overrides the default cutoff and
// the literal word "all" disables seen-item filtering (train positives
// are masked by default). Blank lines and lines starting with '#' are
// skipped. Responses are printed one line per request, in input order:
//   user=<u> k=<k> items=<item>:<score>,...
// (--verbose appends ' degraded=<mode> seq=<n>' in --concurrent mode.)
//
// With --concurrent the tool routes every request through the
// serve::ServingFrontEnd (MPMC queue + adaptive micro-batcher) instead
// of the single-driver InferenceService: --producers client threads
// submit concurrently, the dispatcher forms batches of up to --batch
// requests flushed after at most --flush-us microseconds, and output
// is still printed in input order. Responses are bit-identical to the
// synchronous path for any producer count.
//
// Examples:
//   bslrec_train --dataset=yelp --loss=BSL --save=model.ckpt
//   echo "3 10" | bslrec_serve --dataset=yelp --load=model.ckpt
//   bslrec_serve --dataset=yelp --load=model.ckpt
//                --requests=reqs.txt --batch=256 --threads=8
//   bslrec_serve --dataset=yelp --load=model.ckpt --requests=reqs.txt
//                --concurrent --producers=8 --flush-us=200
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/bipartite_graph.h"
#include "models/checkpoint.h"
#include "serve/inference_service.h"
#include "serve/serving_frontend.h"
#include "serve/wire.h"
#include "tool_util.h"

namespace {

using namespace bslrec;  // NOLINT: tool-local convenience

struct Options {
  std::string dataset = "yelp";  // yelp|amazon|gowalla|ml1m
  std::string train_file;
  std::string test_file;
  std::string backbone = "mf";  // mf|ngcf|lightgcn|sgl|simgcl|lightgcl
  size_t dim = 32;
  int layers = 2;
  std::string load_path;
  std::string requests_file;  // empty = stdin
  uint32_t k = 10;            // default cutoff per request
  uint32_t max_k = 100;       // cache / prefix-reuse depth
  uint32_t shard_items = serve::CatalogScorer::kDefaultItemsPerShard;
  size_t batch = 32;          // requests handled per HandleBatch call
  bool no_cache = false;
  bool quantize = false;      // int8 two-phase catalog scan
  bool fp16 = false;          // fp16 two-phase catalog scan
  bool ann = false;           // IVF approximate retrieval
  uint32_t nlist = 0;         // coarse lists (0 = ceil(sqrt(num_items)))
  uint32_t nprobe = serve::kDefaultNprobe;  // lists visited per query
  bool recall = false;        // replay against an exact reference
  uint32_t margin = serve::kDefaultCandidateMargin;
  uint64_t seed = 42;
  size_t threads = 0;  // 0 = hardware concurrency, 1 = serial
  bool concurrent = false;  // route through serve::ServingFrontEnd
  size_t producers = 4;     // client threads in --concurrent mode
  uint32_t flush_us = 200;  // micro-batch flush deadline (us)
  // ---- admission control (--concurrent only) ----
  size_t max_queue = 0;          // bounded queue depth (0 = unbounded)
  std::string overflow = "block";  // block|shed-newest|shed-oldest
  uint32_t deadline_us = 0;      // per-request SLO (0 = none)
  std::string lane = "interactive";  // interactive|bulk
  uint32_t brownout_nprobe = 0;  // > 0 enables brownout degradation
  bool verbose = false;  // append degraded=/seq= per response line
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: bslrec_serve [--dataset=yelp|amazon|gowalla|ml1m]\n"
      "                    [--train-file=F --test-file=F]\n"
      "                    [--backbone=mf|ngcf|lightgcn|sgl|simgcl|lightgcl]\n"
      "                    [--dim=N] [--layers=N] [--load=CKPT]\n"
      "                    [--requests=FILE] [--k=N] [--max-k=N]\n"
      "                    [--batch=N] [--shard-items=N] [--no-cache]\n"
      "                    [--quantize] [--fp16] [--margin=N]\n"
      "                    [--ann] [--nlist=N] [--nprobe=P] [--recall]\n"
      "                    [--threads=N] [--seed=N]\n"
      "                    [--concurrent] [--producers=N] [--flush-us=D]\n"
      "                    [--max-queue=N] "
      "[--overflow=block|shed-newest|shed-oldest]\n"
      "                    [--deadline-us=D] [--lane=interactive|bulk]\n"
      "                    [--brownout-nprobe=P] [--verbose]\n"
      "\n"
      "Serves top-k recommendations from a frozen model snapshot.\n"
      "Requests are read from --requests (default: stdin), one per\n"
      "line: '<user> [<k>] [all]' — k defaults to --k; 'all' disables\n"
      "seen-item filtering for that request. Output, in input order:\n"
      "  user=<u> k=<k> items=<item>:<score>,...\n"
      "\n"
      "--load:        checkpoint from bslrec_train --save (without it\n"
      "               the model serves its random initialization)\n"
      "--batch:       requests grouped per HandleBatch call (>= 1);\n"
      "               responses are identical for any batch size\n"
      "--max-k:       per-user rankings are cached at this depth and\n"
      "               smaller cutoffs served as prefixes\n"
      "--shard-items: catalog items per scoring shard (per-worker\n"
      "               score-buffer size)\n"
      "--quantize:    scan the catalog through an int8-quantized item\n"
      "               table, then exact-re-rank the survivors in fp32\n"
      "               (certified two-phase scan). Responses are\n"
      "               bit-identical to the exact scorer — this flag\n"
      "               trades memory traffic for a wider per-shard\n"
      "               candidate pass, it never changes a ranking\n"
      "--fp16:        scan through an fp16 item table instead (mutually\n"
      "               exclusive with --quantize). Certification-free:\n"
      "               returned scores are exact fp32 but near-margin\n"
      "               items can be missed — use --recall to measure\n"
      "--ann:         approximate retrieval through an IVF coarse index\n"
      "               built at snapshot time: score --nlist centroids,\n"
      "               visit the top --nprobe lists, exact fp32 re-rank\n"
      "               the gathered candidates. Composes with --quantize\n"
      "               or --fp16 (they pick the list-scan representation).\n"
      "               Responses are deterministic (bit-identical for any\n"
      "               --threads / --batch / --shard-items) but may miss\n"
      "               items outside the probed lists\n"
      "--nlist:       coarse lists in the IVF index\n"
      "               (0 = ceil(sqrt(num_items)))\n"
      "--nprobe:      lists visited per query (clamped to [1, nlist]);\n"
      "               higher = better recall, slower\n"
      "--recall:      after serving, replay every request against an\n"
      "               exact reference scorer and report measured\n"
      "               recall-vs-exact on stderr (approximate modes)\n"
      "--margin:      extra phase-1 candidates per shard beyond k\n"
      "               (quantized mode; larger = fewer exact-rescan\n"
      "               fallbacks on near-tie score distributions)\n"
      "--threads:     worker count (0 = one per hardware thread,\n"
      "               1 = serial). Results are bit-identical for any\n"
      "               value.\n"
      "--concurrent:  serve through the concurrent front door\n"
      "               (serve::ServingFrontEnd): --producers client\n"
      "               threads submit into an MPMC queue and a\n"
      "               dispatcher forms micro-batches of up to --batch\n"
      "               requests, flushing a partial batch --flush-us\n"
      "               microseconds after its oldest request arrived.\n"
      "               Output order and every response are identical\n"
      "               to the synchronous path.\n"
      "--producers:   client threads in --concurrent mode (>= 1)\n"
      "--flush-us:    micro-batch flush deadline in microseconds\n"
      "--max-queue:   bound the front-door queue at N requests\n"
      "               (--concurrent only; 0 = unbounded). At capacity\n"
      "               the --overflow policy decides who loses\n"
      "--overflow:    what a full queue does to the overflowing\n"
      "               request: 'block' makes the producer wait\n"
      "               (backpressure), 'shed-newest' refuses the\n"
      "               incoming request, 'shed-oldest' evicts the\n"
      "               oldest queued one (bulk lane first). Shed\n"
      "               requests fail with a retriable overload error\n"
      "               and print as 'error=overload' lines\n"
      "--deadline-us: per-request SLO in microseconds measured from\n"
      "               submission; a request past its deadline fails\n"
      "               fast ('error=deadline') instead of being scored\n"
      "--lane:        admission lane for every request: 'interactive'\n"
      "               (drained first under the weighted-fair policy)\n"
      "               or 'bulk' (replay traffic; first shed victim)\n"
      "--brownout-nprobe: enable brownout degradation: under queue\n"
      "               pressure the dispatcher serves through the\n"
      "               snapshot's IVF index at P probes (building the\n"
      "               index at freeze time) and recovers when the\n"
      "               backlog clears. Degraded responses remain\n"
      "               bit-identical to the synchronous path at the\n"
      "               degraded tier\n"
      "--verbose:     (--concurrent only) append ' degraded=<mode>\n"
      "               seq=<n>' to every response line so degraded\n"
      "               responses and the snapshot publication that\n"
      "               served them are attributable per request\n");
}

bool ParseFlags(int argc, char** argv, Options& opts) {
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string key = arg, value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto as_int = [&]() { return std::atoll(value.c_str()); };
    if (key == "dataset") {
      opts.dataset = value;
    } else if (key == "train-file") {
      opts.train_file = value;
    } else if (key == "test-file") {
      opts.test_file = value;
    } else if (key == "backbone") {
      opts.backbone = value;
    } else if (key == "dim") {
      opts.dim = static_cast<size_t>(as_int());
    } else if (key == "layers") {
      opts.layers = static_cast<int>(as_int());
    } else if (key == "load") {
      opts.load_path = value;
    } else if (key == "requests") {
      opts.requests_file = value;
    } else if (key == "k") {
      opts.k = static_cast<uint32_t>(as_int());
    } else if (key == "max-k") {
      opts.max_k = static_cast<uint32_t>(as_int());
    } else if (key == "shard-items") {
      opts.shard_items = static_cast<uint32_t>(as_int());
    } else if (key == "batch") {
      opts.batch = static_cast<size_t>(as_int());
    } else if (key == "no-cache") {
      opts.no_cache = true;
    } else if (key == "quantize") {
      opts.quantize = true;
    } else if (key == "fp16") {
      opts.fp16 = true;
    } else if (key == "ann") {
      opts.ann = true;
    } else if (key == "nlist") {
      opts.nlist = static_cast<uint32_t>(as_int());
    } else if (key == "nprobe") {
      opts.nprobe = static_cast<uint32_t>(as_int());
    } else if (key == "recall") {
      opts.recall = true;
    } else if (key == "margin") {
      opts.margin = static_cast<uint32_t>(as_int());
    } else if (key == "seed") {
      opts.seed = static_cast<uint64_t>(as_int());
    } else if (key == "concurrent") {
      opts.concurrent = true;
    } else if (key == "producers") {
      opts.producers = static_cast<size_t>(as_int());
    } else if (key == "flush-us") {
      opts.flush_us = static_cast<uint32_t>(as_int());
    } else if (key == "max-queue") {
      opts.max_queue = static_cast<size_t>(as_int());
    } else if (key == "overflow") {
      opts.overflow = value;
    } else if (key == "deadline-us") {
      opts.deadline_us = static_cast<uint32_t>(as_int());
    } else if (key == "lane") {
      opts.lane = value;
    } else if (key == "brownout-nprobe") {
      opts.brownout_nprobe = static_cast<uint32_t>(as_int());
    } else if (key == "verbose") {
      opts.verbose = true;
    } else if (key == "threads") {
      const long long n = as_int();
      if (n < 0) {
        std::fprintf(stderr, "--threads must be >= 0 (got %lld)\n", n);
        return false;
      }
      opts.threads = static_cast<size_t>(n);
    } else if (key == "help") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '--%s'\n", key.c_str());
      return false;
    }
  }
  if (opts.k == 0 || opts.max_k == 0 || opts.batch == 0 ||
      opts.shard_items == 0) {
    std::fprintf(stderr, "--k, --max-k, --batch, --shard-items must be > 0\n");
    return false;
  }
  if (opts.concurrent && opts.producers == 0) {
    std::fprintf(stderr, "--producers must be >= 1\n");
    return false;
  }
  if (opts.overflow != "block" && opts.overflow != "shed-newest" &&
      opts.overflow != "shed-oldest") {
    std::fprintf(stderr,
                 "--overflow must be block, shed-newest, or shed-oldest\n");
    return false;
  }
  if (opts.lane != "interactive" && opts.lane != "bulk") {
    std::fprintf(stderr, "--lane must be interactive or bulk\n");
    return false;
  }
  if (!opts.concurrent &&
      (opts.max_queue != 0 || opts.deadline_us != 0 ||
       opts.brownout_nprobe != 0)) {
    std::fprintf(stderr,
                 "--max-queue, --deadline-us, and --brownout-nprobe are "
                 "admission policy and need --concurrent\n");
    return false;
  }
  if (opts.verbose && !opts.concurrent) {
    std::fprintf(stderr,
                 "--verbose reports front-door response attribution "
                 "(degrade tier, snapshot seq) and needs --concurrent\n");
    return false;
  }
  if (opts.quantize && opts.fp16) {
    std::fprintf(stderr, "--quantize and --fp16 are mutually exclusive\n");
    return false;
  }
  if (opts.ann && opts.nprobe == 0) {
    std::fprintf(stderr, "--nprobe must be >= 1\n");
    return false;
  }
  if (opts.recall && !opts.ann && !opts.fp16) {
    std::fprintf(stderr,
                 "--recall needs an approximate mode (--ann or --fp16); "
                 "exact and --quantize responses match the reference by "
                 "construction\n");
    return false;
  }
  return true;
}

// Parses one request line through the shared wire grammar (wire.h);
// returns false (with the historical stderr diagnostic) on malformed
// input or an out-of-range user.
bool ParseRequest(const std::string& line, const Options& opts,
                  uint32_t num_users, serve::TopKRequest& req) {
  serve::wire::ParseOptions parse_opts;
  parse_opts.num_users = num_users;
  parse_opts.default_k = opts.k;
  parse_opts.default_lane = opts.lane == "bulk"
                                ? serve::RequestLane::kBulk
                                : serve::RequestLane::kInteractive;
  serve::wire::ParsedRequest parsed;
  const serve::ServeStatus status =
      serve::wire::ParseRequest(line, parse_opts, &parsed);
  if (!status.ok()) {
    std::fprintf(stderr, "bad request '%s': %s\n", line.c_str(),
                 status.detail.c_str());
    return false;
  }
  req = parsed.topk;
  return true;
}

void PrintResponses(const std::vector<serve::TopKRequest>& reqs,
                    const std::vector<serve::TopKResponse>& resps) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    std::printf("%s\n",
                serve::wire::FormatCliResponse(reqs[i], resps[i]).c_str());
  }
}

// Short human tag for the active scan mode in the snapshot-ready line.
std::string ModeSuffix(const Options& opts) {
  std::string s;
  if (opts.quantize) s += ", int8 catalog table";
  if (opts.fp16) s += ", fp16 catalog table";
  if (opts.ann) s += ", ivf index";
  return s;
}

// Replays `reqs` against an exact reference service built from the same
// model/threads and reports the mean per-request overlap fraction
// |approx ∩ exact| / |exact| — the measured recall of the approximate
// responses in `resps`. Exact scoring is deterministic, so this is the
// same reference bench_serve sweeps against.
void ReportRecall(const Options& opts, const Dataset& data,
                  const EmbeddingModel& model, const serve::ServeConfig& cfg,
                  const std::vector<serve::TopKRequest>& reqs,
                  const std::vector<serve::TopKResponse>& resps) {
  serve::ServeConfig ref_cfg = cfg;
  ref_cfg.quantize = false;
  ref_cfg.fp16 = false;
  ref_cfg.exact = true;
  ref_cfg.ivf = serve::IvfBuildOptions{};
  serve::InferenceService ref(data, model, ref_cfg);
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < reqs.size(); i += opts.batch) {
    const size_t n = std::min(opts.batch, reqs.size() - i);
    const std::vector<serve::TopKResponse> exact =
        ref.HandleBatch({reqs.data() + i, n});
    for (size_t j = 0; j < n; ++j) {
      if (exact[j].items.empty()) continue;
      size_t hits = 0;
      for (uint32_t item : resps[i + j].items) {
        for (uint32_t e : exact[j].items) {
          if (e == item) {
            ++hits;
            break;
          }
        }
      }
      sum += static_cast<double>(hits) /
             static_cast<double>(exact[j].items.size());
      ++counted;
    }
  }
  std::fprintf(stderr, "measured recall@%u vs exact: %.4f (%zu requests)\n",
               opts.k,
               counted > 0 ? sum / static_cast<double>(counted) : 1.0,
               counted);
}

// Per-mode scorer counters for the stderr summary.
void ReportScanStats(const Options& opts, const serve::CatalogScorer& scorer) {
  const serve::CatalogScorer::Stats st = scorer.stats();
  if (opts.ann) {
    std::fprintf(stderr,
                 "ivf probe: %llu queries, %llu lists visited, %llu "
                 "candidates gathered, %llu re-ranked\n",
                 static_cast<unsigned long long>(st.ivf_queries),
                 static_cast<unsigned long long>(st.ivf_lists),
                 static_cast<unsigned long long>(st.ivf_candidates),
                 static_cast<unsigned long long>(st.ivf_reranked));
    return;
  }
  if (opts.quantize) {
    std::fprintf(stderr,
                 "quantized scan: %llu shard tasks, %llu exact fallbacks\n",
                 static_cast<unsigned long long>(st.shards_scanned),
                 static_cast<unsigned long long>(st.shards_fallback));
  } else if (opts.fp16) {
    std::fprintf(stderr, "fp16 scan: %llu shard tasks\n",
                 static_cast<unsigned long long>(st.fp16_shards));
  }
}

// Maps the --overflow flag (pre-validated by ParseFlags) to the policy.
serve::OverflowPolicy OverflowFromFlag(const std::string& name) {
  if (name == "shed-newest") return serve::OverflowPolicy::kShedNewest;
  if (name == "shed-oldest") return serve::OverflowPolicy::kShedOldest;
  return serve::OverflowPolicy::kBlock;
}

// --concurrent mode: replay every request through the front door from
// --producers client threads. Requests are read up front (producer
// threads must not interleave stream reads); each future is stored at
// its request's original index so output stays in input order. With
// admission control configured a future can carry an overload or
// deadline error instead of a ranking; those print as error= lines.
int ServeConcurrent(const Options& opts, const Dataset& data,
                    const EmbeddingModel& model, const serve::ServeConfig& cfg,
                    std::istream& in) {
  serve::FrontEndConfig fe;
  fe.max_batch = opts.batch;
  fe.flush_deadline_us = opts.flush_us;
  fe.max_queue_depth = opts.max_queue;
  fe.overflow = OverflowFromFlag(opts.overflow);
  fe.default_deadline_us = opts.deadline_us;
  if (opts.brownout_nprobe > 0) {
    fe.brownout.enable = true;
    fe.brownout.nprobe = opts.brownout_nprobe;
  }
  fe.serve = cfg;
  serve::ServingFrontEnd frontend(data, model, fe);
  std::fprintf(stderr,
               "snapshot ready (%u users x %u items, dim %zu%s), "
               "front door: max_batch=%zu flush-us=%u\n",
               frontend.current_snapshot()->num_users(),
               frontend.current_snapshot()->num_items(),
               frontend.current_snapshot()->dim(),
               ModeSuffix(opts).c_str(), fe.max_batch, fe.flush_deadline_us);
  if (fe.max_queue_depth > 0 || fe.default_deadline_us > 0 ||
      fe.brownout.enable) {
    std::fprintf(stderr,
                 "admission: max-queue=%zu overflow=%s deadline-us=%u "
                 "lane=%s brownout-nprobe=%u\n",
                 fe.max_queue_depth, opts.overflow.c_str(),
                 fe.default_deadline_us, opts.lane.c_str(),
                 fe.brownout.enable ? fe.brownout.nprobe : 0u);
  }

  std::vector<serve::TopKRequest> reqs;
  size_t malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (serve::wire::IsIgnorableLine(line)) continue;
    serve::TopKRequest req;
    if (!ParseRequest(line, opts, data.num_users(), req)) {
      ++malformed;
      continue;
    }
    reqs.push_back(req);
  }

  const size_t producers =
      std::max<size_t>(1, std::min(opts.producers, reqs.size()));
  std::vector<std::future<serve::ServedResponse>> futures(reqs.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    clients.emplace_back([&, p] {
      // Strided slice: producer p submits requests p, p+P, p+2P, ...
      for (size_t i = p; i < reqs.size(); i += producers) {
        futures[i] = frontend.Submit(reqs[i]);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // Harvest in input order. Under admission control a future may carry
  // a typed error instead of a ranking; keep a placeholder response so
  // indices stay aligned and record the ErrorCode for printing (one
  // enum switch via StatusFromException — no catch cascade).
  std::vector<serve::TopKResponse> resps(reqs.size());
  std::vector<serve::ErrorCode> codes(reqs.size(), serve::ErrorCode::kOk);
  std::vector<serve::DegradeMode> modes(reqs.size(), serve::DegradeMode::kNone);
  std::vector<uint64_t> seqs(reqs.size(), 0);
  size_t served = 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    try {
      serve::ServedResponse r = futures[i].get();  // users/k pre-validated
      resps[i] = std::move(r.topk);
      modes[i] = r.degrade_mode;
      seqs[i] = r.snapshot_seq;
      ++served;
    } catch (...) {
      codes[i] =
          serve::StatusFromException(std::current_exception()).code;
    }
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  for (size_t i = 0; i < reqs.size(); ++i) {
    if (codes[i] != serve::ErrorCode::kOk) {
      std::printf("user=%u k=%u error=%s\n", reqs[i].user, reqs[i].k,
                  serve::wire::CliErrorToken(codes[i]));
      continue;
    }
    const std::string rendered =
        opts.verbose
            ? serve::wire::FormatCliResponse(reqs[i], resps[i], modes[i],
                                             seqs[i])
            : serve::wire::FormatCliResponse(reqs[i], resps[i]);
    std::printf("%s\n", rendered.c_str());
  }
  const serve::FrontEndStats st = frontend.stats();
  std::fprintf(
      stderr,
      "served %zu/%zu requests from %zu producers in %.1f ms (%.0f req/s), "
      "%zu malformed\n",
      served, reqs.size(), producers, secs * 1000.0,
      secs > 0.0 ? static_cast<double>(served) / secs : 0.0, malformed);
  std::fprintf(stderr,
               "front door: %llu batches (%llu size / %llu deadline / "
               "%llu drain flushes), largest batch %llu\n",
               static_cast<unsigned long long>(st.batches),
               static_cast<unsigned long long>(st.size_flushes),
               static_cast<unsigned long long>(st.deadline_flushes),
               static_cast<unsigned long long>(st.drain_flushes),
               static_cast<unsigned long long>(st.max_batch_served));
  std::fprintf(stderr,
               "admission: %llu submitted, depth high-water %llu, "
               "%llu blocked submits, %llu shed-newest, %llu shed-oldest\n",
               static_cast<unsigned long long>(st.submitted),
               static_cast<unsigned long long>(st.queue_depth_high_water),
               static_cast<unsigned long long>(st.blocked_submits),
               static_cast<unsigned long long>(st.shed_newest),
               static_cast<unsigned long long>(st.shed_oldest));
  std::fprintf(stderr,
               "deadlines: %llu admission / %llu queue / %llu batch "
               "expiries\n",
               static_cast<unsigned long long>(st.expired_admission),
               static_cast<unsigned long long>(st.expired_queue),
               static_cast<unsigned long long>(st.expired_batch));
  std::fprintf(
      stderr, "lanes: interactive %llu/%llu served, bulk %llu/%llu served\n",
      static_cast<unsigned long long>(
          st.lane_served[static_cast<size_t>(serve::RequestLane::kInteractive)]),
      static_cast<unsigned long long>(st.lane_submitted[static_cast<size_t>(
          serve::RequestLane::kInteractive)]),
      static_cast<unsigned long long>(
          st.lane_served[static_cast<size_t>(serve::RequestLane::kBulk)]),
      static_cast<unsigned long long>(
          st.lane_submitted[static_cast<size_t>(serve::RequestLane::kBulk)]));
  if (fe.brownout.enable) {
    std::fprintf(stderr,
                 "brownout: %llu entries / %llu exits, %.1f ms degraded, "
                 "%llu degraded responses\n",
                 static_cast<unsigned long long>(st.brownout_entries),
                 static_cast<unsigned long long>(st.brownout_exits),
                 static_cast<double>(st.brownout_us) / 1000.0,
                 static_cast<unsigned long long>(st.degraded_served));
  }
  if (opts.recall) {
    // Recall is only meaningful for fulfilled rankings — drop shed or
    // expired slots before replaying against the exact reference.
    std::vector<serve::TopKRequest> ok_reqs;
    std::vector<serve::TopKResponse> ok_resps;
    ok_reqs.reserve(served);
    ok_resps.reserve(served);
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (codes[i] != serve::ErrorCode::kOk) continue;
      ok_reqs.push_back(reqs[i]);
      ok_resps.push_back(resps[i]);
    }
    ReportRecall(opts, data, model, cfg, ok_reqs, ok_resps);
  }
  return malformed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseFlags(argc, argv, opts)) {
    Usage();
    return 2;
  }

  const auto data = tools::LoadDatasetFromFlags(opts.dataset, opts.train_file,
                                                opts.test_file, opts.seed);
  if (!data.has_value()) return 1;
  std::fprintf(stderr, "data: %u users, %u items, %zu train interactions\n",
               data->num_users(), data->num_items(), data->num_train());

  const BipartiteGraph graph(*data);
  Rng rng(opts.seed);
  auto model =
      tools::MakeBackbone(opts.backbone, graph, opts.dim, opts.layers, rng);
  if (model == nullptr) return 1;
  if (!opts.load_path.empty()) {
    if (!LoadModelParams(*model, opts.load_path)) return 1;
    std::fprintf(stderr, "loaded checkpoint %s\n", opts.load_path.c_str());
  } else {
    std::fprintf(stderr,
                 "warning: no --load given, serving random-init %s model\n",
                 opts.backbone.c_str());
  }
  model->Forward(rng);  // materialize final embeddings for the snapshot

  serve::ServeConfig cfg;
  cfg.max_k = opts.max_k;
  cfg.items_per_shard = opts.shard_items;
  cfg.cache_rankings = !opts.no_cache;
  cfg.quantize = opts.quantize;
  cfg.fp16 = opts.fp16;
  cfg.exact = !opts.ann;
  cfg.nprobe = opts.nprobe;
  cfg.ivf.nlist = opts.nlist;
  cfg.candidate_margin = opts.margin;
  cfg.runtime.num_threads = opts.threads;
  std::ifstream req_file;
  if (!opts.requests_file.empty()) {
    req_file.open(opts.requests_file);
    if (!req_file) {
      std::fprintf(stderr, "cannot open --requests file '%s'\n",
                   opts.requests_file.c_str());
      return 1;
    }
  }
  std::istream& in = opts.requests_file.empty() ? std::cin : req_file;

  if (opts.concurrent) return ServeConcurrent(opts, *data, *model, cfg, in);

  serve::InferenceService service(*data, *model, cfg);
  std::fprintf(stderr, "snapshot ready (%u users x %u items, dim %zu%s)\n",
               service.snapshot().num_users(), service.snapshot().num_items(),
               service.snapshot().dim(), ModeSuffix(opts).c_str());

  size_t served = 0, malformed = 0;
  double total_secs = 0.0;
  std::vector<serve::TopKRequest> batch;
  // --recall retains every request/response pair for the reference
  // replay after serving.
  std::vector<serve::TopKRequest> all_reqs;
  std::vector<serve::TopKResponse> all_resps;
  const auto flush = [&]() {
    if (batch.empty()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<serve::TopKResponse> resps =
        service.HandleBatch(batch);
    total_secs += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    PrintResponses(batch, resps);
    if (opts.recall) {
      all_reqs.insert(all_reqs.end(), batch.begin(), batch.end());
      all_resps.insert(all_resps.end(), resps.begin(), resps.end());
    }
    served += batch.size();
    batch.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (serve::wire::IsIgnorableLine(line)) continue;
    serve::TopKRequest req;
    if (!ParseRequest(line, opts, data->num_users(), req)) {
      ++malformed;
      continue;
    }
    batch.push_back(req);
    if (batch.size() >= opts.batch) flush();
  }
  flush();

  std::fprintf(stderr,
               "served %zu requests in %.1f ms (%.0f req/s), %zu malformed\n",
               served, total_secs * 1000.0,
               total_secs > 0.0 ? static_cast<double>(served) / total_secs
                                : 0.0,
               malformed);
  ReportScanStats(opts, service.scorer());
  if (opts.recall) {
    ReportRecall(opts, *data, *model, cfg, all_reqs, all_resps);
  }
  return malformed == 0 ? 0 : 1;
}
