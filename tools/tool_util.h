// Shared scaffolding for the command-line tools (bslrec_train,
// bslrec_serve): dataset selection from the common --dataset /
// --train-file / --test-file flags and the backbone factory behind the
// common --backbone flag. Keeping these here means a new preset or
// backbone shows up in every tool at once instead of drifting.
#ifndef BSLREC_TOOLS_TOOL_UTIL_H_
#define BSLREC_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "data/dataset.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "models/contrastive.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "models/ngcf.h"

namespace bslrec::tools {

// Loads interaction files when given, otherwise generates the named
// synthetic preset (yelp|amazon|gowalla|ml1m). Returns nullopt with a
// stderr diagnostic on bad flags.
inline std::optional<Dataset> LoadDatasetFromFlags(
    const std::string& dataset, const std::string& train_file,
    const std::string& test_file, uint64_t seed) {
  if (!train_file.empty()) {
    if (test_file.empty()) {
      std::fprintf(stderr, "--train-file requires --test-file\n");
      return std::nullopt;
    }
    return LoadInteractions(train_file, test_file);
  }
  if (dataset == "yelp") {
    return GenerateSynthetic(Yelp18Synth(seed)).dataset;
  }
  if (dataset == "amazon") {
    return GenerateSynthetic(AmazonSynth(seed)).dataset;
  }
  if (dataset == "gowalla") {
    return GenerateSynthetic(GowallaSynth(seed)).dataset;
  }
  if (dataset == "ml1m") {
    return GenerateSynthetic(Movielens1MSynth(seed)).dataset;
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
  return std::nullopt;
}

// Builds the backbone named by --backbone
// (mf|ngcf|lightgcn|sgl|simgcl|lightgcl); nullptr with a stderr
// diagnostic on an unknown name.
inline std::unique_ptr<EmbeddingModel> MakeBackbone(
    const std::string& backbone, const BipartiteGraph& graph, size_t dim,
    int layers, Rng& rng) {
  if (backbone == "mf") {
    return std::make_unique<MfModel>(graph.num_users(), graph.num_items(),
                                     dim, rng);
  }
  if (backbone == "ngcf") {
    return std::make_unique<NgcfModel>(graph, dim, layers, rng);
  }
  if (backbone == "lightgcn") {
    return std::make_unique<LightGcnModel>(graph, dim, layers, rng);
  }
  ContrastiveConfig cc;
  cc.num_layers = layers;
  if (backbone == "sgl") {
    cc.kind = AugmentationKind::kEdgeDropout;
  } else if (backbone == "simgcl") {
    cc.kind = AugmentationKind::kEmbeddingNoise;
  } else if (backbone == "lightgcl") {
    cc.kind = AugmentationKind::kSvdView;
  } else {
    std::fprintf(stderr, "unknown backbone '%s'\n", backbone.c_str());
    return nullptr;
  }
  return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
}

}  // namespace bslrec::tools

#endif  // BSLREC_TOOLS_TOOL_UTIL_H_
