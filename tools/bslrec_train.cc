// bslrec_train — command-line trainer/evaluator for the bslrec library.
//
// Train any backbone x loss combination on a synthetic preset or on your
// own interaction files, report Recall/NDCG/Precision/HitRate@K, and
// optionally save/load embedding checkpoints.
//
// Examples:
//   bslrec_train --dataset=yelp --backbone=mf --loss=BSL
//                --tau=0.6 --tau1=0.72 --epochs=30
//   bslrec_train --train-file=train.txt --test-file=test.txt
//                --backbone=lightgcn --loss=SL --in-batch --save=model.ckpt
//
// All flags are --key=value (or bare --key for booleans); unknown flags
// abort with usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/losses.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "models/checkpoint.h"
#include "sampling/negative_sampler.h"
#include "tool_util.h"
#include "train/trainer.h"

namespace {

using bslrec::LossKind;

struct Options {
  std::string dataset = "yelp";  // yelp|amazon|gowalla|ml1m
  std::string train_file;
  std::string test_file;
  std::string backbone = "mf";  // mf|ngcf|lightgcn|sgl|simgcl|lightgcl
  std::string loss = "BSL";
  double tau = 0.6;
  double tau1 = 0.66;
  double margin = 0.5;
  double negative_weight = 1.0;
  size_t dim = 32;
  int layers = 2;
  int epochs = 30;
  double lr = 0.05;
  double weight_decay = 1e-6;
  size_t negatives = 64;
  size_t batch = 1024;
  bool in_batch = false;
  int eval_every = 5;
  uint32_t eval_k = 20;
  uint64_t seed = 42;
  size_t threads = 0;  // 0 = hardware concurrency, 1 = serial
  bool async_eval = false;
  size_t eval_threads = 0;  // 0 = half the training budget
  std::string save_path;
  std::string load_path;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: bslrec_train [--dataset=yelp|amazon|gowalla|ml1m]\n"
      "                    [--train-file=F --test-file=F]\n"
      "                    [--backbone=mf|ngcf|lightgcn|sgl|simgcl|lightgcl]\n"
      "                    [--loss=BPR|BCE|MSE|SL|SL-full|BSL|CML|CCL]\n"
      "                    [--tau=X] [--tau1=X] [--margin=X]\n"
      "                    [--dim=N] [--layers=N] [--epochs=N] [--lr=X]\n"
      "                    [--negatives=N] [--batch=N] [--in-batch]\n"
      "                    [--eval-every=N] [--eval-k=N] [--seed=N]\n"
      "                    [--threads=N] [--async-eval] [--eval-threads=N]\n"
      "                    [--save=F] [--load=F]\n"
      "\n"
      "--threads: worker count for training, evaluation, and graph\n"
      "propagation — the trainer hands its pool to the model, so GCN\n"
      "backbones' Forward/Backward parallelize too (0 = one per\n"
      "hardware thread, 1 = serial). Results are bit-identical for any\n"
      "value.\n"
      "\n"
      "--async-eval: overlap each periodic evaluation with the next\n"
      "training epoch — the trainer freezes a model snapshot and a\n"
      "background pool runs the full ranking pass while training\n"
      "continues. Reported metrics are bit-identical to synchronous\n"
      "evaluation; only wall time changes. --eval-threads sizes the\n"
      "background pool (0 = half of --threads, at least 1).\n");
}

bool ParseFlags(int argc, char** argv, Options& opts) {
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string key = arg, value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto as_double = [&]() { return std::atof(value.c_str()); };
    const auto as_int = [&]() { return std::atoll(value.c_str()); };
    if (key == "dataset") {
      opts.dataset = value;
    } else if (key == "train-file") {
      opts.train_file = value;
    } else if (key == "test-file") {
      opts.test_file = value;
    } else if (key == "backbone") {
      opts.backbone = value;
    } else if (key == "loss") {
      opts.loss = value;
    } else if (key == "tau") {
      opts.tau = as_double();
    } else if (key == "tau1") {
      opts.tau1 = as_double();
    } else if (key == "margin") {
      opts.margin = as_double();
    } else if (key == "negative-weight") {
      opts.negative_weight = as_double();
    } else if (key == "dim") {
      opts.dim = static_cast<size_t>(as_int());
    } else if (key == "layers") {
      opts.layers = static_cast<int>(as_int());
    } else if (key == "epochs") {
      opts.epochs = static_cast<int>(as_int());
    } else if (key == "lr") {
      opts.lr = as_double();
    } else if (key == "weight-decay") {
      opts.weight_decay = as_double();
    } else if (key == "negatives") {
      opts.negatives = static_cast<size_t>(as_int());
    } else if (key == "batch") {
      opts.batch = static_cast<size_t>(as_int());
    } else if (key == "in-batch") {
      opts.in_batch = true;
    } else if (key == "eval-every") {
      opts.eval_every = static_cast<int>(as_int());
    } else if (key == "eval-k") {
      opts.eval_k = static_cast<uint32_t>(as_int());
    } else if (key == "seed") {
      opts.seed = static_cast<uint64_t>(as_int());
    } else if (key == "threads") {
      const long long n = as_int();
      if (n < 0) {
        std::fprintf(stderr, "--threads must be >= 0 (got %lld)\n", n);
        return false;
      }
      opts.threads = static_cast<size_t>(n);
    } else if (key == "async-eval") {
      opts.async_eval = true;
    } else if (key == "eval-threads") {
      const long long n = as_int();
      if (n < 0) {
        std::fprintf(stderr, "--eval-threads must be >= 0 (got %lld)\n", n);
        return false;
      }
      opts.eval_threads = static_cast<size_t>(n);
    } else if (key == "save") {
      opts.save_path = value;
    } else if (key == "load") {
      opts.load_path = value;
    } else if (key == "help") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '--%s'\n", key.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseFlags(argc, argv, opts)) {
    Usage();
    return 2;
  }

  const auto data = bslrec::tools::LoadDatasetFromFlags(
      opts.dataset, opts.train_file, opts.test_file, opts.seed);
  if (!data.has_value()) return 1;
  std::printf("data: %u users, %u items, %zu train, %zu test (%.3f%% dense)\n",
              data->num_users(), data->num_items(), data->num_train(),
              data->num_test(), 100.0 * data->TrainDensity());

  const auto loss_kind = bslrec::ParseLossKind(opts.loss);
  if (!loss_kind.has_value()) {
    std::fprintf(stderr, "unknown loss '%s'\n", opts.loss.c_str());
    return 1;
  }
  bslrec::LossParams loss_params;
  loss_params.tau = opts.tau;
  loss_params.tau1 = opts.tau1;
  loss_params.margin = opts.margin;
  loss_params.negative_weight = opts.negative_weight;
  const auto loss = bslrec::CreateLoss(*loss_kind, loss_params);

  const bslrec::BipartiteGraph graph(*data);
  bslrec::Rng rng(opts.seed);
  auto model = bslrec::tools::MakeBackbone(opts.backbone, graph, opts.dim,
                                           opts.layers, rng);
  if (model == nullptr) return 1;
  if (!opts.load_path.empty() &&
      !bslrec::LoadModelParams(*model, opts.load_path)) {
    return 1;
  }

  bslrec::UniformNegativeSampler sampler(*data);
  bslrec::TrainConfig cfg;
  cfg.epochs = opts.epochs;
  cfg.batch_size = opts.batch;
  cfg.num_negatives = opts.negatives;
  cfg.sampling_mode = opts.in_batch
                          ? bslrec::SamplingMode::kInBatch
                          : bslrec::SamplingMode::kSampledNegatives;
  cfg.lr = opts.lr;
  cfg.weight_decay = opts.weight_decay;
  cfg.eval_every = opts.eval_every;
  cfg.metric_k = opts.eval_k;
  cfg.seed = opts.seed;
  cfg.runtime.num_threads = opts.threads;
  cfg.async_eval = opts.async_eval;
  cfg.runtime.eval_threads = opts.eval_threads;

  bslrec::Trainer trainer(*data, *model, *loss, sampler, cfg);
  std::printf("training %s + %s (dim %zu, %d epochs)...\n",
              opts.backbone.c_str(), opts.loss.c_str(), opts.dim,
              opts.epochs);
  const bslrec::TrainResult result = trainer.Train();
  std::printf(
      "best (epoch %d): Recall@%u %.4f  NDCG@%u %.4f  Precision@%u %.4f  "
      "HitRate@%u %.4f\n",
      result.best_epoch, opts.eval_k, result.best.recall, opts.eval_k,
      result.best.ndcg, opts.eval_k, result.best.precision, opts.eval_k,
      result.best.hit_rate);

  if (!opts.save_path.empty()) {
    if (!bslrec::SaveModelParams(*model, opts.save_path)) return 1;
    std::printf("checkpoint written to %s\n", opts.save_path.c_str());
  }
  return 0;
}
