// bench_summary — perf-trajectory headline extractor.
//
// Reads the BENCH_*.json files the bench harnesses emit and distills
// them into one small BENCH_summary.json: a handful of headline
// metrics (trainer samples/sec, serve req/s + p99, ANN recall@k and
// speedup-vs-exact, graph propagate ms/layer, front-door req/s under
// contention) plus the per-file determinism-probe verdicts — the ANN
// recall floor (>= 0.95 at the headline sweep point) counts as a
// probe, so a recall regression fails the gate like a determinism
// break would. CI's bench-trajectory step uploads the
// summary as an artifact so the repo's perf history is one tiny file
// per run instead of five — and exits non-zero when any probe failed
// or an expected metric is missing, so a silent format drift can't
// fake a healthy trajectory.
//
//   bench_summary [--out=BENCH_summary.json] BENCH_runtime.json ...
//
// The extractor is a purpose-built scanner for the repo's own bench
// JSON (bench/bench_util.h envelope + known payload keys), not a
// general JSON parser — it tolerates reordered keys but knows which
// file contributes which headline by basename.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Headline {
  const char* key;     // name in BENCH_summary.json
  double value;
};

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Returns the text of the bracketed section (array or object) opening
// right after `"key":`, brackets balanced; empty if absent.
std::string Section(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                  text[pos]))) {
    ++pos;
  }
  if (pos >= text.size() || (text[pos] != '[' && text[pos] != '{')) return "";
  const char open = text[pos];
  const char close = open == '[' ? ']' : '}';
  int depth = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    if (text[i] == close && --depth == 0) {
      return text.substr(pos, i - pos + 1);
    }
  }
  return "";
}

// Splits a flat-or-nested JSON array into its top-level object texts.
std::vector<std::string> Objects(const std::string& array_text) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < array_text.size(); ++i) {
    if (array_text[i] == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (array_text[i] == '}') {
      if (--depth == 0) out.push_back(array_text.substr(start, i - start + 1));
    }
  }
  return out;
}

std::optional<double> Number(const std::string& text, const std::string& key,
                             bool last = false) {
  const std::string needle = "\"" + key + "\":";
  std::optional<double> found;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const char* start = text.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start) {
      found = v;
      if (!last) return found;
    }
    pos += needle.size();
  }
  return found;
}

std::optional<bool> Bool(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const size_t v = text.find_first_not_of(" \t\n", pos + needle.size());
  if (v == std::string::npos) return std::nullopt;
  if (text.compare(v, 4, "true") == 0) return true;
  if (text.compare(v, 5, "false") == 0) return false;
  return std::nullopt;
}

// The determinism-probe verdict FinishBenchJson wrote (key varies by
// bench: "bit_identical" or "metrics_bit_identical").
std::optional<bool> ProbeVerdict(const std::string& text) {
  if (auto v = Bool(text, "bit_identical"); v.has_value()) return v;
  return Bool(text, "metrics_bit_identical");
}

int Fail(const std::string& why) {
  std::fprintf(stderr, "bench_summary: %s\n", why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_summary.json";
  std::vector<std::string> inputs;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "usage: bench_summary [--out=FILE] BENCH_*.json...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Fail("no input files (pass BENCH_*.json)");

  std::vector<Headline> headlines;
  std::vector<std::pair<std::string, bool>> probes;
  std::string machine;  // copied verbatim from the first input
  bool all_probes_passed = true;
  std::optional<double> runtime_trainer_sps, sampling_trainer_sps;

  for (const std::string& path : inputs) {
    const std::optional<std::string> text = ReadFile(path);
    if (!text.has_value()) return Fail("cannot read " + path);
    const std::string name = Basename(path);

    const std::optional<bool> probe = ProbeVerdict(*text);
    if (!probe.has_value()) {
      return Fail(name + ": no determinism-probe verdict found");
    }
    probes.emplace_back(name, *probe);
    all_probes_passed = all_probes_passed && *probe;
    if (machine.empty()) machine = Section(*text, "machine");

    if (name == "BENCH_runtime.json" || name == "BENCH_sampling.json") {
      // Last trainer point = hardware-thread end-to-end throughput.
      // The sampling bench's number (fused in-shard pipeline) wins
      // when both files are given; runtime's fills in otherwise.
      const std::optional<double> sps =
          Number(Section(*text, "trainer"), "samples_per_sec", true);
      if (!sps.has_value()) return Fail(name + ": no trainer samples/sec");
      if (name == "BENCH_sampling.json") {
        sampling_trainer_sps = sps;
      } else {
        runtime_trainer_sps = sps;
      }
    } else if (name == "BENCH_serve.json") {
      // Widest exact-scan point: max threads, then max batch.
      double best_rps = -1.0, best_p99 = -1.0;
      double best_threads = -1.0, best_batch = -1.0;
      for (const std::string& obj : Objects(Section(*text, "points"))) {
        if (obj.find("\"mode\": \"exact\"") == std::string::npos) continue;
        const std::optional<double> threads = Number(obj, "threads");
        const std::optional<double> batch = Number(obj, "batch");
        const std::optional<double> rps = Number(obj, "requests_per_sec");
        const std::optional<double> p99 = Number(obj, "p99_ms");
        if (!threads || !batch || !rps || !p99) continue;
        if (*threads > best_threads ||
            (*threads == best_threads && *batch > best_batch)) {
          best_threads = *threads;
          best_batch = *batch;
          best_rps = *rps;
          best_p99 = *p99;
        }
      }
      if (best_rps < 0.0) return Fail(name + ": no exact serve point");
      headlines.push_back({"serve_req_per_sec", best_rps});
      headlines.push_back({"serve_p99_ms", best_p99});
      // Front door under the heaviest contention (max producers).
      double best_producers = -1.0, fd_rps = -1.0, fd_p99 = -1.0;
      const std::string frontend = Section(*text, "frontend");
      for (const std::string& obj : Objects(Section(frontend, "points"))) {
        const std::optional<double> producers = Number(obj, "producers");
        const std::optional<double> rps = Number(obj, "requests_per_sec");
        const std::optional<double> p99 = Number(obj, "p99_ms");
        if (!producers || !rps || !p99) continue;
        if (*producers > best_producers) {
          best_producers = *producers;
          fd_rps = *rps;
          fd_p99 = *p99;
        }
      }
      if (fd_rps < 0.0) return Fail(name + ": no front-door point");
      headlines.push_back({"frontdoor_producers", best_producers});
      headlines.push_back({"frontdoor_req_per_sec", fd_rps});
      headlines.push_back({"frontdoor_p99_ms", fd_p99});
      // Loopback socket transport at the heaviest producer count, plus
      // its bytewise-identity probe (socket responses vs the
      // wire-formatted synchronous path). Missing section = failure,
      // like the overload gate below.
      double net_producers = -1.0, net_rps = -1.0, net_p99 = -1.0;
      const std::string net = Section(*text, "net");
      for (const std::string& obj : Objects(Section(net, "points"))) {
        const std::optional<double> producers = Number(obj, "producers");
        const std::optional<double> rps = Number(obj, "requests_per_sec");
        const std::optional<double> p99 = Number(obj, "p99_ms");
        if (!producers || !rps || !p99) continue;
        if (*producers > net_producers) {
          net_producers = *producers;
          net_rps = *rps;
          net_p99 = *p99;
        }
      }
      if (net_rps < 0.0) return Fail(name + ": no net transport point");
      headlines.push_back({"net_reqs_per_sec", net_rps});
      headlines.push_back({"net_p99_ms", net_p99});
      const std::optional<bool> net_probe =
          Bool(net, "transport_bit_identical");
      if (!net_probe.has_value()) {
        return Fail(name + ": no net transport probe");
      }
      probes.emplace_back(name + ":net_transport_bit_identical", *net_probe);
      all_probes_passed = all_probes_passed && *net_probe;
      // ANN tier: headline recall + speedup, plus the hard recall
      // floor. The headline "recall_at_k" is the last occurrence in
      // the section (each sweep point carries its own), and the floor
      // is a probe so a recall regression fails the trajectory gate
      // exactly like a determinism break would.
      const std::string ann = Section(*text, "ann");
      const std::optional<double> ann_recall =
          Number(ann, "recall_at_k", true);
      const std::optional<double> ann_speedup =
          Number(ann, "speedup_vs_exact");
      if (!ann_recall || !ann_speedup) {
        return Fail(name + ": no ann recall/speedup headline");
      }
      headlines.push_back({"ann_recall_at_k", *ann_recall});
      headlines.push_back({"ann_speedup_vs_exact", *ann_speedup});
      probes.emplace_back(name + ":ann_recall_floor", *ann_recall >= 0.95);
      all_probes_passed = all_probes_passed && *ann_recall >= 0.95;
      // Overload tier: goodput under admission control plus its four
      // probe verdicts (accounting identity, queue-depth bound,
      // no-expired-fulfilled, tier bit-identity). A missing section is
      // a failure — the overload gate must not silently drop out.
      const std::string overload = Section(*text, "overload");
      const std::optional<double> goodput =
          Number(overload, "goodput_requests_per_sec");
      const std::optional<double> wait_p99 =
          Number(overload, "queue_wait_p99_ms");
      if (!goodput || !wait_p99) {
        return Fail(name + ": no overload goodput headline");
      }
      headlines.push_back({"overload_goodput_req_per_sec", *goodput});
      headlines.push_back({"overload_queue_wait_p99_ms", *wait_p99});
      for (const char* probe_key :
           {"accounting", "depth_bound", "no_expired_fulfilled",
            "tier_bit_identical"}) {
        const std::optional<bool> v =
            Bool(Section(overload, "probes"), probe_key);
        if (!v.has_value()) {
          return Fail(name + ": no overload probe '" +
                      std::string(probe_key) + "'");
        }
        probes.emplace_back(name + ":overload_" + probe_key, *v);
        all_probes_passed = all_probes_passed && *v;
      }
    } else if (name == "BENCH_graph.json") {
      const std::optional<double> ms =
          Number(Section(*text, "propagate"), "ms", true);
      const std::optional<double> layers =
          Number(Section(*text, "graph"), "layers");
      if (!ms || !layers || *layers <= 0.0) {
        return Fail(name + ": no propagate ms / layer count");
      }
      headlines.push_back({"propagate_ms_per_layer", *ms / *layers});
    }
    // Other files (e.g. BENCH_async.json) contribute their probe only.
  }
  if (sampling_trainer_sps.has_value() || runtime_trainer_sps.has_value()) {
    headlines.insert(headlines.begin(),
                     {"trainer_samples_per_sec",
                      sampling_trainer_sps.value_or(
                          runtime_trainer_sps.value_or(0.0))});
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) return Fail("cannot write " + out_path);
  std::fprintf(out, "{\n");
  if (!machine.empty()) {
    std::fprintf(out, "  \"machine\": %s,\n", machine.c_str());
  }
  std::fprintf(out, "  \"sources\": [");
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i == 0 ? "" : ", ",
                 Basename(inputs[i]).c_str());
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"headline\": {\n");
  for (size_t i = 0; i < headlines.size(); ++i) {
    std::fprintf(out, "    \"%s\": %.4f%s\n", headlines[i].key,
                 headlines[i].value, i + 1 < headlines.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"probes\": {\n");
  for (size_t i = 0; i < probes.size(); ++i) {
    std::fprintf(out, "    \"%s\": %s%s\n", probes[i].first.c_str(),
                 probes[i].second ? "true" : "false",
                 i + 1 < probes.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"all_probes_passed\": %s\n",
               all_probes_passed ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  for (const Headline& h : headlines) {
    std::printf("%-28s %.4f\n", h.key, h.value);
  }
  std::printf("all probes passed: %s\n", all_probes_passed ? "yes" : "NO");
  std::printf("wrote %s\n", out_path.c_str());
  return all_probes_passed ? 0 : 1;
}
