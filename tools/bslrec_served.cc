// bslrec_served — network serving daemon for the front door.
//
// Loads a dataset and a model checkpoint, freezes the model into a
// serving snapshot behind the concurrent front door
// (serve::ServingFrontEnd), and serves top-k requests over TCP through
// serve::NetServer: a non-blocking epoll loop whose connection
// handlers do no scoring — every parsed line becomes a front-door
// Submit, so micro-batching, admission control, deadlines, lanes, and
// brownout all apply to socket traffic exactly as they do in-process.
//
// The protocol is the newline-delimited grammar documented atop
// src/serve/wire.h (both the TOPK wire form and the legacy
// '<user> [<k>] [all]' CLI form are accepted):
//   TOPK 3 10 LANE=interactive DEADLINE_US=5000 ID=a1
//   -> OK a1 none seq=1 17:0.812345 4:0.798101 ...
//   -> ERR a1 OVERLOAD retry_after_us=1000        (shed)
//   -> ERR a1 DEADLINE stage=queue                (SLO missed)
//   -> ERR a1 BAD_REQUEST <detail>                (malformed)
//
// SIGINT/SIGTERM stop the server gracefully: in-flight requests are
// answered and flushed before the process exits, then the front-door
// and transport stats print to stderr.
//
// Examples:
//   bslrec_train --dataset=yelp --loss=BSL --save=model.ckpt
//   bslrec_served --dataset=yelp --load=model.ckpt --port=7070
//   printf 'TOPK 3 10 ID=x\n' | nc 127.0.0.1 7070
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "graph/bipartite_graph.h"
#include "models/checkpoint.h"
#include "serve/net_server.h"
#include "serve/serving_frontend.h"
#include "tool_util.h"

namespace {

using namespace bslrec;  // NOLINT: tool-local convenience

struct Options {
  std::string dataset = "yelp";  // yelp|amazon|gowalla|ml1m
  std::string train_file;
  std::string test_file;
  std::string backbone = "mf";  // mf|ngcf|lightgcn|sgl|simgcl|lightgcl
  size_t dim = 32;
  int layers = 2;
  std::string load_path;
  uint32_t k = 10;      // default cutoff for lines that name none
  uint32_t max_k = 100;  // cache / prefix-reuse depth
  uint32_t shard_items = serve::CatalogScorer::kDefaultItemsPerShard;
  bool no_cache = false;
  bool quantize = false;
  bool fp16 = false;
  bool ann = false;
  uint32_t nlist = 0;
  uint32_t nprobe = serve::kDefaultNprobe;
  uint32_t margin = serve::kDefaultCandidateMargin;
  uint64_t seed = 42;
  size_t threads = 0;  // 0 = hardware concurrency, 1 = serial
  // ---- front door ----
  size_t batch = 32;        // micro-batch size (max_batch)
  uint32_t flush_us = 200;  // micro-batch flush deadline (us)
  size_t max_queue = 0;     // bounded queue depth (0 = unbounded)
  std::string overflow = "block";  // block|shed-newest|shed-oldest
  uint32_t deadline_us = 0;        // default per-request SLO (0 = none)
  uint32_t brownout_nprobe = 0;    // > 0 enables brownout degradation
  // ---- transport ----
  std::string bind = "127.0.0.1";
  uint16_t port = 7070;  // 0 = ephemeral (printed on startup)
  int backlog = 128;
  size_t io_threads = 1;
  size_t max_line = 4096;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: bslrec_served [--dataset=yelp|amazon|gowalla|ml1m]\n"
      "                     [--train-file=F --test-file=F]\n"
      "                     "
      "[--backbone=mf|ngcf|lightgcn|sgl|simgcl|lightgcl]\n"
      "                     [--dim=N] [--layers=N] [--load=CKPT]\n"
      "                     [--k=N] [--max-k=N] [--shard-items=N]\n"
      "                     [--no-cache] [--quantize] [--fp16]\n"
      "                     [--ann] [--nlist=N] [--nprobe=P] [--margin=N]\n"
      "                     [--threads=N] [--seed=N]\n"
      "                     [--batch=N] [--flush-us=D] [--max-queue=N]\n"
      "                     [--overflow=block|shed-newest|shed-oldest]\n"
      "                     [--deadline-us=D] [--brownout-nprobe=P]\n"
      "                     [--bind=ADDR] [--port=N] [--backlog=N]\n"
      "                     [--io-threads=N] [--max-line=N]\n"
      "\n"
      "Serves top-k recommendations over TCP: newline-delimited\n"
      "requests per the grammar atop src/serve/wire.h —\n"
      "  TOPK <user> <k> [FILTER=seen|none] [LANE=interactive|bulk]\n"
      "       [DEADLINE_US=n] [ID=token]\n"
      "or the legacy '<user> [<k>] [all]' CLI form. Responses:\n"
      "  OK <id> <degrade_mode> seq=<n> <item>:<score> ...\n"
      "  ERR <id> OVERLOAD retry_after_us=<n> | DEADLINE stage=<s> |\n"
      "      BAD_REQUEST <detail> | INTERNAL <detail>\n"
      "SIGINT/SIGTERM drain in-flight requests, then exit.\n"
      "\n"
      "Model / scoring flags (same meaning as bslrec_serve):\n"
      "--load:        checkpoint from bslrec_train --save (without it\n"
      "               the model serves its random initialization)\n"
      "--k:           cutoff for request lines that name no k\n"
      "--max-k:       per-user rankings are cached at this depth\n"
      "--shard-items: catalog items per scoring shard\n"
      "--quantize:    int8 certified two-phase catalog scan\n"
      "--fp16:        fp16 two-phase scan (excludes --quantize)\n"
      "--ann:         IVF approximate retrieval (--nlist/--nprobe)\n"
      "--margin:      extra phase-1 candidates per shard (quantized)\n"
      "--threads:     scorer workers (0 = hardware concurrency)\n"
      "\n"
      "Front-door flags (same meaning as bslrec_serve --concurrent):\n"
      "--batch:       micro-batch size (dispatcher flushes at N)\n"
      "--flush-us:    micro-batch flush deadline in microseconds\n"
      "--max-queue:   bound the front-door queue at N requests\n"
      "               (0 = unbounded); at capacity --overflow applies\n"
      "--overflow:    block | shed-newest | shed-oldest. Shed requests\n"
      "               answer 'ERR <id> OVERLOAD retry_after_us=<n>'\n"
      "--deadline-us: default SLO for requests without DEADLINE_US=;\n"
      "               missed deadlines answer 'ERR _ DEADLINE stage=_'\n"
      "--brownout-nprobe: enable brownout degradation at P IVF probes;\n"
      "               degraded responses carry their tier in the OK\n"
      "               line's <degrade_mode> field\n"
      "\n"
      "Transport flags:\n"
      "--bind:        listen address (default 127.0.0.1)\n"
      "--port:        listen port (0 = ephemeral; the bound port is\n"
      "               printed on startup)\n"
      "--backlog:     listen(2) backlog\n"
      "--io-threads:  epoll event-loop threads (>= 1); connections are\n"
      "               assigned round-robin. Handlers never score — all\n"
      "               scoring happens behind the front door\n"
      "--max-line:    longest accepted request line in bytes; a\n"
      "               connection exceeding it without a newline is\n"
      "               answered BAD_REQUEST and hung up\n");
}

bool ParseFlags(int argc, char** argv, Options& opts) {
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string key = arg, value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto as_int = [&]() { return std::atoll(value.c_str()); };
    if (key == "dataset") {
      opts.dataset = value;
    } else if (key == "train-file") {
      opts.train_file = value;
    } else if (key == "test-file") {
      opts.test_file = value;
    } else if (key == "backbone") {
      opts.backbone = value;
    } else if (key == "dim") {
      opts.dim = static_cast<size_t>(as_int());
    } else if (key == "layers") {
      opts.layers = static_cast<int>(as_int());
    } else if (key == "load") {
      opts.load_path = value;
    } else if (key == "k") {
      opts.k = static_cast<uint32_t>(as_int());
    } else if (key == "max-k") {
      opts.max_k = static_cast<uint32_t>(as_int());
    } else if (key == "shard-items") {
      opts.shard_items = static_cast<uint32_t>(as_int());
    } else if (key == "no-cache") {
      opts.no_cache = true;
    } else if (key == "quantize") {
      opts.quantize = true;
    } else if (key == "fp16") {
      opts.fp16 = true;
    } else if (key == "ann") {
      opts.ann = true;
    } else if (key == "nlist") {
      opts.nlist = static_cast<uint32_t>(as_int());
    } else if (key == "nprobe") {
      opts.nprobe = static_cast<uint32_t>(as_int());
    } else if (key == "margin") {
      opts.margin = static_cast<uint32_t>(as_int());
    } else if (key == "seed") {
      opts.seed = static_cast<uint64_t>(as_int());
    } else if (key == "threads") {
      opts.threads = static_cast<size_t>(as_int());
    } else if (key == "batch") {
      opts.batch = static_cast<size_t>(as_int());
    } else if (key == "flush-us") {
      opts.flush_us = static_cast<uint32_t>(as_int());
    } else if (key == "max-queue") {
      opts.max_queue = static_cast<size_t>(as_int());
    } else if (key == "overflow") {
      opts.overflow = value;
    } else if (key == "deadline-us") {
      opts.deadline_us = static_cast<uint32_t>(as_int());
    } else if (key == "brownout-nprobe") {
      opts.brownout_nprobe = static_cast<uint32_t>(as_int());
    } else if (key == "bind") {
      opts.bind = value;
    } else if (key == "port") {
      opts.port = static_cast<uint16_t>(as_int());
    } else if (key == "backlog") {
      opts.backlog = static_cast<int>(as_int());
    } else if (key == "io-threads") {
      opts.io_threads = static_cast<size_t>(as_int());
    } else if (key == "max-line") {
      opts.max_line = static_cast<size_t>(as_int());
    } else if (key == "help") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '--%s'\n", key.c_str());
      return false;
    }
  }
  if (opts.k == 0 || opts.max_k == 0 || opts.batch == 0 ||
      opts.shard_items == 0) {
    std::fprintf(stderr, "--k, --max-k, --batch, --shard-items must be > 0\n");
    return false;
  }
  if (opts.overflow != "block" && opts.overflow != "shed-newest" &&
      opts.overflow != "shed-oldest") {
    std::fprintf(stderr,
                 "--overflow must be block, shed-newest, or shed-oldest\n");
    return false;
  }
  if (opts.quantize && opts.fp16) {
    std::fprintf(stderr, "--quantize and --fp16 are mutually exclusive\n");
    return false;
  }
  if (opts.ann && opts.nprobe == 0) {
    std::fprintf(stderr, "--nprobe must be >= 1\n");
    return false;
  }
  if (opts.io_threads == 0 || opts.max_line == 0) {
    std::fprintf(stderr, "--io-threads and --max-line must be >= 1\n");
    return false;
  }
  return true;
}

serve::OverflowPolicy OverflowFromFlag(const std::string& name) {
  if (name == "shed-newest") return serve::OverflowPolicy::kShedNewest;
  if (name == "shed-oldest") return serve::OverflowPolicy::kShedOldest;
  return serve::OverflowPolicy::kBlock;
}

std::string ModeSuffix(const Options& opts) {
  std::string s;
  if (opts.quantize) s += ", int8 catalog table";
  if (opts.fp16) s += ", fp16 catalog table";
  if (opts.ann) s += ", ivf index";
  return s;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

void ReportStats(const serve::FrontEndStats& st,
                 const serve::NetServer::Stats& net) {
  std::fprintf(stderr,
               "net: %llu connections accepted (%llu closed), %llu lines, "
               "%llu requests, %llu bad, %llu ok / %llu err responses\n",
               static_cast<unsigned long long>(net.connections_accepted),
               static_cast<unsigned long long>(net.connections_closed),
               static_cast<unsigned long long>(net.lines),
               static_cast<unsigned long long>(net.requests),
               static_cast<unsigned long long>(net.bad_requests),
               static_cast<unsigned long long>(net.responses_ok),
               static_cast<unsigned long long>(net.responses_err));
  std::fprintf(stderr,
               "front door: %llu batches (%llu size / %llu deadline / "
               "%llu drain flushes), largest batch %llu\n",
               static_cast<unsigned long long>(st.batches),
               static_cast<unsigned long long>(st.size_flushes),
               static_cast<unsigned long long>(st.deadline_flushes),
               static_cast<unsigned long long>(st.drain_flushes),
               static_cast<unsigned long long>(st.max_batch_served));
  std::fprintf(stderr,
               "admission: %llu submitted, depth high-water %llu, "
               "%llu blocked submits, %llu shed-newest, %llu shed-oldest\n",
               static_cast<unsigned long long>(st.submitted),
               static_cast<unsigned long long>(st.queue_depth_high_water),
               static_cast<unsigned long long>(st.blocked_submits),
               static_cast<unsigned long long>(st.shed_newest),
               static_cast<unsigned long long>(st.shed_oldest));
  std::fprintf(stderr,
               "deadlines: %llu admission / %llu queue / %llu batch "
               "expiries\n",
               static_cast<unsigned long long>(st.expired_admission),
               static_cast<unsigned long long>(st.expired_queue),
               static_cast<unsigned long long>(st.expired_batch));
  std::fprintf(stderr,
               "brownout: %llu entries / %llu exits, %.1f ms degraded, "
               "%llu degraded responses\n",
               static_cast<unsigned long long>(st.brownout_entries),
               static_cast<unsigned long long>(st.brownout_exits),
               static_cast<double>(st.brownout_us) / 1000.0,
               static_cast<unsigned long long>(st.degraded_served));
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseFlags(argc, argv, opts)) {
    Usage();
    return 2;
  }

  const auto data = tools::LoadDatasetFromFlags(opts.dataset, opts.train_file,
                                                opts.test_file, opts.seed);
  if (!data.has_value()) return 1;
  std::fprintf(stderr, "data: %u users, %u items, %zu train interactions\n",
               data->num_users(), data->num_items(), data->num_train());

  const BipartiteGraph graph(*data);
  Rng rng(opts.seed);
  auto model =
      tools::MakeBackbone(opts.backbone, graph, opts.dim, opts.layers, rng);
  if (model == nullptr) return 1;
  if (!opts.load_path.empty()) {
    if (!LoadModelParams(*model, opts.load_path)) return 1;
    std::fprintf(stderr, "loaded checkpoint %s\n", opts.load_path.c_str());
  } else {
    std::fprintf(stderr,
                 "warning: no --load given, serving random-init %s model\n",
                 opts.backbone.c_str());
  }
  model->Forward(rng);  // materialize final embeddings for the snapshot

  serve::FrontEndConfig fe;
  fe.max_batch = opts.batch;
  fe.flush_deadline_us = opts.flush_us;
  fe.max_queue_depth = opts.max_queue;
  fe.overflow = OverflowFromFlag(opts.overflow);
  fe.default_deadline_us = opts.deadline_us;
  if (opts.brownout_nprobe > 0) {
    fe.brownout.enable = true;
    fe.brownout.nprobe = opts.brownout_nprobe;
  }
  fe.serve.max_k = opts.max_k;
  fe.serve.items_per_shard = opts.shard_items;
  fe.serve.cache_rankings = !opts.no_cache;
  fe.serve.quantize = opts.quantize;
  fe.serve.fp16 = opts.fp16;
  fe.serve.exact = !opts.ann;
  fe.serve.nprobe = opts.nprobe;
  fe.serve.ivf.nlist = opts.nlist;
  fe.serve.candidate_margin = opts.margin;
  fe.serve.runtime.num_threads = opts.threads;
  serve::ServingFrontEnd frontend(*data, *model, fe);
  std::fprintf(stderr,
               "snapshot ready (%u users x %u items, dim %zu%s), "
               "front door: max_batch=%zu flush-us=%u\n",
               frontend.current_snapshot()->num_users(),
               frontend.current_snapshot()->num_items(),
               frontend.current_snapshot()->dim(), ModeSuffix(opts).c_str(),
               fe.max_batch, fe.flush_deadline_us);

  serve::NetServerConfig net;
  net.bind_address = opts.bind;
  net.port = opts.port;
  net.backlog = opts.backlog;
  net.io_threads = opts.io_threads;
  net.max_line_bytes = opts.max_line;
  net.default_k = opts.k;
  serve::NetServer server(frontend, net);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.last_error().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on %s:%u (%zu io threads)\n",
               opts.bind.c_str(), server.port(), opts.io_threads);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "stop requested, draining...\n");
  server.Stop();
  ReportStats(frontend.stats(), server.stats());
  return 0;
}
